package vec

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is a sparse vector in coordinate form with strictly increasing
// indices. Real in-RDBMS feature data (KDDCup-99 one-hot encodings, text
// features) is overwhelmingly sparse; this representation backs
// data.SparseDataset so paper-scale sparse datasets fit in memory.
type Sparse struct {
	Idx []int     // strictly increasing, non-negative
	Val []float64 // len(Val) == len(Idx)
}

// NewSparse validates and wraps a coordinate-form vector. Indices must
// be non-negative and strictly increasing.
func NewSparse(idx []int, val []float64) (*Sparse, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("vec: sparse index/value length mismatch %d != %d", len(idx), len(val))
	}
	for i, ix := range idx {
		if ix < 0 {
			return nil, fmt.Errorf("vec: negative sparse index %d", ix)
		}
		if i > 0 && idx[i-1] >= ix {
			return nil, fmt.Errorf("vec: sparse indices not strictly increasing at %d", i)
		}
	}
	return &Sparse{Idx: idx, Val: val}, nil
}

// DenseToSparse extracts the non-zero coordinates of x.
func DenseToSparse(x []float64) *Sparse {
	s := &Sparse{}
	for i, v := range x {
		if v != 0 {
			s.Idx = append(s.Idx, i)
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// NNZ returns the number of stored (non-zero) coordinates.
func (s *Sparse) NNZ() int { return len(s.Idx) }

// MaxIndex returns the largest index, or -1 for an empty vector.
func (s *Sparse) MaxIndex() int {
	if len(s.Idx) == 0 {
		return -1
	}
	return s.Idx[len(s.Idx)-1]
}

// Dot returns ⟨s, dense⟩. Indices beyond len(dense) contribute zero.
func (s *Sparse) Dot(dense []float64) float64 {
	var sum float64
	for i, ix := range s.Idx {
		if ix >= len(dense) {
			break
		}
		sum += s.Val[i] * dense[ix]
	}
	return sum
}

// Norm returns ‖s‖₂.
func (s *Sparse) Norm() float64 {
	var sum float64
	for _, v := range s.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale multiplies all stored values by alpha.
func (s *Sparse) Scale(alpha float64) {
	for i := range s.Val {
		s.Val[i] *= alpha
	}
}

// AxpyInto computes dst += alpha·s. Indices beyond len(dst) panic, as
// that is always a dimension bookkeeping bug.
func (s *Sparse) AxpyInto(dst []float64, alpha float64) {
	for i, ix := range s.Idx {
		dst[ix] += alpha * s.Val[i]
	}
}

// AxpyIntoDelta computes dst += alpha·s like AxpyInto and additionally
// returns the induced change in ‖dst‖²:
//
//	Δ = ‖dst+α·s‖² − ‖dst‖² = 2α⟨dst, s⟩ + α²‖s‖²
//
// evaluated against dst's pre-update values in the same single pass
// over the non-zeros. It is the kernel behind the sparse SGD engine's
// incremental norm tracking (internal/sgd): the engine keeps ‖v‖² as a
// running scalar so the O(1) projection test never has to rescan the
// dense model.
func (s *Sparse) AxpyIntoDelta(dst []float64, alpha float64) float64 {
	var cross, sq float64
	for i, ix := range s.Idx {
		v := s.Val[i]
		cross += dst[ix] * v
		sq += v * v
		dst[ix] += alpha * v
	}
	return 2*alpha*cross + alpha*alpha*sq
}

// Scatter writes s into dst, zeroing all other coordinates. len(dst)
// must cover MaxIndex.
func (s *Sparse) Scatter(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, ix := range s.Idx {
		dst[ix] = s.Val[i]
	}
}

// SparseDot returns the inner product of two sparse vectors by merging
// their index lists.
func SparseDot(a, b *Sparse) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			sum += a.Val[i] * b.Val[j]
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// SortedCopy returns a canonicalized copy of possibly-unsorted
// coordinate pairs (duplicates summed) — the forgiving constructor for
// parser output.
func SortedCopy(idx []int, val []float64) (*Sparse, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("vec: sparse index/value length mismatch %d != %d", len(idx), len(val))
	}
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, len(idx))
	for k := range idx {
		if idx[k] < 0 {
			return nil, fmt.Errorf("vec: negative sparse index %d", idx[k])
		}
		ps[k] = pair{idx[k], val[k]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	out := &Sparse{}
	for _, p := range ps {
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == p.i {
			out.Val[n-1] += p.v
			continue
		}
		out.Idx = append(out.Idx, p.i)
		out.Val = append(out.Val, p.v)
	}
	return out, nil
}
