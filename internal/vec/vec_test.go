package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{}, []float64{}, 0},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, -1}, []float64{1, 1}, 0},
		{[]float64{0.5}, []float64{0.5}, 0.25},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dot(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot did not panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	a := []float64{3, -4}
	if got := Norm(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm1(a); math.Abs(got-7) > 1e-12 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(a); math.Abs(got-4) > 1e-12 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestDist(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{4, 6}
	if got := Dist(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Errorf("Dist(a,a) = %v, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(dst, 2, []float64{10, 20, 30})
	want := []float64{21, 42, 63}
	if !Equal(dst, want, 1e-12) {
		t.Errorf("Axpy = %v, want %v", dst, want)
	}
}

func TestScaleAddSub(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 3)
	if !Equal(a, []float64{3, 6}, 0) {
		t.Errorf("Scale = %v", a)
	}
	dst := make([]float64, 2)
	Add(dst, []float64{1, 2}, []float64{3, 4})
	if !Equal(dst, []float64{4, 6}, 0) {
		t.Errorf("Add = %v", dst)
	}
	Sub(dst, []float64{1, 2}, []float64{3, 4})
	if !Equal(dst, []float64{-2, -2}, 0) {
		t.Errorf("Sub = %v", dst)
	}
	// Aliasing: dst == a must work.
	x := []float64{1, 1}
	Add(x, x, x)
	if !Equal(x, []float64{2, 2}, 0) {
		t.Errorf("aliased Add = %v", x)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := []float64{1, 2}
	b := Copy(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("Copy is not independent of the source")
	}
}

func TestZeroFill(t *testing.T) {
	a := []float64{1, 2}
	Zero(a)
	if !Equal(a, []float64{0, 0}, 0) {
		t.Errorf("Zero = %v", a)
	}
	Fill(a, 7)
	if !Equal(a, []float64{7, 7}, 0) {
		t.Errorf("Fill = %v", a)
	}
}

func TestProjectBall(t *testing.T) {
	w := []float64{3, 4} // norm 5
	ProjectBall(w, 1)
	if math.Abs(Norm(w)-1) > 1e-12 {
		t.Errorf("projected norm = %v, want 1", Norm(w))
	}
	// Direction preserved.
	if math.Abs(w[1]/w[0]-4.0/3.0) > 1e-9 {
		t.Errorf("projection changed direction: %v", w)
	}
	// Inside the ball: untouched.
	w2 := []float64{0.1, 0.1}
	orig := Copy(w2)
	ProjectBall(w2, 1)
	if !Equal(w2, orig, 0) {
		t.Errorf("projection moved interior point: %v", w2)
	}
	// r <= 0 means unconstrained.
	w3 := []float64{100, 100}
	ProjectBall(w3, 0)
	if !Equal(w3, []float64{100, 100}, 0) {
		t.Errorf("r=0 projection should be a no-op: %v", w3)
	}
}

// Projection onto a convex set never increases distances — the property
// the paper's constrained-optimization extension relies on (§3.2.3).
func TestProjectBallNonExpansiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(8)
		u := make([]float64, d)
		v := make([]float64, d)
		for i := 0; i < d; i++ {
			u[i] = rr.NormFloat64() * 10
			v[i] = rr.NormFloat64() * 10
		}
		before := Dist(u, v)
		radius := rr.Float64()*5 + 0.01
		ProjectBall(u, radius)
		ProjectBall(v, radius)
		return Dist(u, v) <= before+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	a := []float64{3, 4}
	Normalize(a)
	if math.Abs(Norm(a)-1) > 1e-12 {
		t.Errorf("Normalize norm = %v", Norm(a))
	}
	z := []float64{0, 0}
	Normalize(z)
	if !Equal(z, []float64{0, 0}, 0) {
		t.Errorf("Normalize(0) = %v", z)
	}
}

func TestMean(t *testing.T) {
	dst := make([]float64, 2)
	Mean(dst, []float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if !Equal(dst, []float64{3, 4}, 1e-12) {
		t.Errorf("Mean = %v", dst)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if !Equal(m.Row(1), []float64{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if !Equal(dst, []float64{6, 15}, 1e-12) {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0,1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

// Cauchy-Schwarz as a property: |<a,b>| <= ||a||*||b||.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(10)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i] = rr.NormFloat64()
			b[i] = rr.NormFloat64()
		}
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Triangle inequality for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 1 + rr.Intn(6)
		a := make([]float64, d)
		b := make([]float64, d)
		c := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = rr.NormFloat64(), rr.NormFloat64(), rr.NormFloat64()
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
