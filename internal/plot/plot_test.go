package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, "test chart", []float64{0.1, 0.5, 1},
		[]Series{
			{Name: "up", Y: []float64{0.1, 0.5, 0.9}},
			{Name: "flat", Y: []float64{0.5, 0.5, 0.5}},
		}, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "o=up") || !strings.Contains(out, "+=flat") {
		t.Errorf("legend missing: %q", out)
	}
	// The increasing series' markers appear on distinct rows: first 'o'
	// below last 'o'.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if idx := strings.IndexByte(l, 'o'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Errorf("increasing series should span rows: first=%d last=%d\n%s", firstRow, lastRow, out)
	}
	// Higher y values render on earlier (upper) lines, so the top 'o'
	// is the 0.9 point.
	if !strings.Contains(out, "0.1") || !strings.Contains(out, "0.5") {
		t.Error("x labels missing")
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, "", []float64{1, 2},
		[]Series{{Name: "partial", Y: []float64{math.NaN(), 0.5}}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Count markers in the grid area only (the legend also contains the
	// marker character).
	grid := strings.Split(buf.String(), "+---")[0]
	if n := strings.Count(grid, "o"); n != 1 {
		t.Errorf("expected exactly 1 marker in the grid, found %d", n)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", nil, []Series{{Name: "s", Y: nil}}, 6); err == nil {
		t.Error("no x values accepted")
	}
	if err := Render(&buf, "", []float64{1}, nil, 6); err == nil {
		t.Error("no series accepted")
	}
	if err := Render(&buf, "", []float64{1, 2}, []Series{{Name: "s", Y: []float64{1}}}, 6); err == nil {
		t.Error("misaligned series accepted")
	}
	if err := Render(&buf, "", []float64{1}, []Series{{Name: "s", Y: []float64{math.NaN()}}}, 6); err == nil {
		t.Error("all-NaN accepted")
	}
}

func TestRenderFlatSeriesDoesNotDivideByZero(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", []float64{1, 2},
		[]Series{{Name: "c", Y: []float64{0.7, 0.7}}}, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "o") {
		t.Error("flat series not drawn")
	}
}

func TestRenderTinyHeightClamped(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, "", []float64{1},
		[]Series{{Name: "s", Y: []float64{1}}}, 1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 8 {
		t.Errorf("height clamp failed: %d lines", lines)
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var buf bytes.Buffer
	series := make([]Series, 7)
	for i := range series {
		series[i] = Series{Name: string(rune('a' + i)), Y: []float64{float64(i)}}
	}
	if err := Render(&buf, "", []float64{1}, series, 10); err != nil {
		t.Fatal(err)
	}
	// Marker cycle wraps: series 6 reuses marker 0.
	if !strings.Contains(buf.String(), "o=a") || !strings.Contains(buf.String(), "o=g") {
		t.Errorf("marker cycling broken: %q", buf.String())
	}
}
