// Package plot renders small ASCII line charts so the experiment
// harness can output actual figure-shaped artifacts next to its tables
// — accuracy-vs-ε curves per algorithm, runtime-vs-size series, and so
// on — with no dependencies beyond the standard library.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve. Y must align with the Render call's xs;
// NaN values mark missing points (e.g. BST14 in pure ε-DP scenarios).
type Series struct {
	Name string
	Y    []float64
}

// markers distinguish series in draw order.
var markers = []byte{'o', '+', 'x', '*', '#', '@'}

// Render draws the series over the shared x values as a height-row
// ASCII chart with a y-axis, x labels and a legend. The x spacing is
// ordinal (one column block per x value), which suits the paper's
// log-ish ε grids better than linear scaling.
func Render(w io.Writer, title string, xs []float64, series []Series, height int) error {
	if len(xs) == 0 {
		return fmt.Errorf("plot: no x values")
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if height < 4 {
		height = 8
	}
	for _, s := range series {
		if len(s.Y) != len(xs) {
			return fmt.Errorf("plot: series %q has %d points, want %d", s.Name, len(s.Y), len(xs))
		}
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("plot: all points are NaN")
	}
	if hi == lo {
		hi = lo + 1 // flat series: give the band some height
	}
	// Pad the range slightly so extremes are not glued to the border.
	pad := (hi - lo) * 0.05
	lo -= pad
	hi += pad

	const colWidth = 6 // characters per x slot
	width := len(xs) * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(y float64) int {
		frac := (y - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			col := i*colWidth + colWidth/2
			grid[rowOf(y)][col] = m
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	for r := 0; r < height; r++ {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.3f ", (hi+lo)/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, grid[r])
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	var xl strings.Builder
	xl.WriteString("         ")
	for _, x := range xs {
		xl.WriteString(fmt.Sprintf("%-*s", colWidth, trim(fmt.Sprintf("%g", x), colWidth-1)))
	}
	fmt.Fprintln(w, xl.String())
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "         %s\n", strings.Join(legend, "  "))
	return nil
}

func trim(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
