package core

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
)

func strategyDataset(seed int64, m, d int) *data.Dataset {
	r := rand.New(rand.NewSource(seed))
	return data.Synthetic(r, data.GenConfig{Name: "t", M: m, D: d, Classes: 2, Spread: 0.4, Flip: 0.02})
}

// Sharded strongly convex training must report exactly the sequential
// sensitivity when the shards are equal — privacy-free parallelism at
// the Options level.
func TestShardedSensitivityMatchesSequential(t *testing.T) {
	ds := strategyDataset(1, 1000, 4)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()

	seq, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 2, Batch: 5, Radius: 1 / lambda,
		Rand: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 2, Batch: 5, Radius: 1 / lambda,
		Strategy: engine.Sharded, Workers: 5,
		Rand: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Sensitivity-sh.Sensitivity) > 1e-15 {
		t.Errorf("sharded Δ₂ %v != sequential %v", sh.Sensitivity, seq.Sensitivity)
	}
	if want := dp.SensitivityStronglyConvex(p.L, p.Gamma, 1000); math.Abs(sh.Sensitivity-want) > 1e-15 {
		t.Errorf("sharded Δ₂ %v, want %v", sh.Sensitivity, want)
	}
}

// The convex constant-step sharded sensitivity gains the full 1/P.
func TestShardedConvexSensitivityDividesByWorkers(t *testing.T) {
	ds := strategyDataset(3, 900, 4)
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	workers := 3
	res, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 2, Batch: 5,
		Strategy: engine.Sharded, Workers: workers,
		Rand: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default η = 1/√minShard, clamped to 2/β.
	eta := math.Min(1/math.Sqrt(300), 2/p.Beta)
	want := dp.SensitivityConvexConstant(p.L, eta, 2, 5) / float64(workers)
	if math.Abs(res.Sensitivity-want) > 1e-15 {
		t.Errorf("convex sharded Δ₂ %v, want %v", res.Sensitivity, want)
	}
}

// Streaming is pinned to one pass and must work without shuffling
// memory: k > 1 is rejected, k = 1 (or defaulted) succeeds with the
// one-pass sensitivity.
func TestStreamingStrategy(t *testing.T) {
	s := data.NewStream(5, 600, 4, 0.4, 0)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()

	if _, err := Train(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 3, Radius: 1 / lambda,
		Strategy: engine.Streaming, Rand: rand.New(rand.NewSource(6)),
	}); err == nil {
		t.Error("multi-pass streaming accepted")
	}

	res, err := Train(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Batch: 5, Radius: 1 / lambda,
		Strategy: engine.Streaming, Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Errorf("streaming ran %d passes", res.Passes)
	}
	if want := dp.SensitivityStronglyConvex(p.L, p.Gamma, 600); math.Abs(res.Sensitivity-want) > 1e-15 {
		t.Errorf("streaming Δ₂ %v, want %v", res.Sensitivity, want)
	}
}

// PaperBatchSensitivity must divide by the batch size that actually
// ran, not the requested one: a batch larger than the (shard) size is
// clamped before the Δ₂ = 2L/(γnb) division, so the noise is never
// calibrated to updates that did not happen.
func TestPaperBatchSensitivityClampsBatch(t *testing.T) {
	ds := strategyDataset(20, 1000, 4)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()

	for _, tc := range []struct {
		name     string
		opts     Options
		wantN, b int // effective size and clamped batch the Δ₂ must use
	}{
		{"sequential batch>m", Options{Batch: 5000}, 1000, 1000},
		{"sharded batch>minShard", Options{Strategy: engine.Sharded, Workers: 10, Batch: 500}, 100, 100},
	} {
		o := tc.opts
		o.Budget = dp.Budget{Epsilon: 1}
		o.Passes = 2
		o.Radius = 1 / lambda
		o.PaperBatchSensitivity = true
		o.Rand = rand.New(rand.NewSource(21))
		res, err := Train(ds, f, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := dp.SensitivityStronglyConvexPaperBatch(p.L, p.Gamma, tc.wantN, tc.b) / float64(o.effWorkers())
		if math.Abs(res.Sensitivity-want) > 1e-18 {
			t.Errorf("%s: Δ₂ %v, want %v (batch must clamp to %d)", tc.name, res.Sensitivity, want, tc.b)
		}
	}
}

func TestStrategyOptionValidation(t *testing.T) {
	ds := strategyDataset(8, 100, 3)
	f := loss.NewLogistic(1e-2, 0)
	if _, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Workers: 4, // Sequential + Workers
		Rand: rand.New(rand.NewSource(9)),
	}); err == nil {
		t.Error("Workers without Sharded strategy accepted")
	}
	if _, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Strategy: engine.Sharded, Workers: 101,
		Rand: rand.New(rand.NewSource(10)),
	}); err == nil {
		t.Error("more workers than rows accepted")
	}
	if _, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Workers: -1,
		Rand: rand.New(rand.NewSource(11)),
	}); err == nil {
		t.Error("negative workers accepted")
	}
}

// A sharded private run should still produce a usable classifier at a
// generous budget — plumbing check from Options down to the engine.
func TestShardedTrainAccuracy(t *testing.T) {
	ds := strategyDataset(12, 2000, 5)
	lambda := 1e-2
	f := loss.NewLogistic(lambda, 0)
	res, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 5}, Passes: 5, Batch: 10, Radius: 1 / lambda,
		Strategy: engine.Sharded, Workers: 4,
		Rand: rand.New(rand.NewSource(13)),
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.At(i)
		var dot float64
		for j := range x {
			dot += res.W[j] * x[j]
		}
		if math.Copysign(1, dot) == y {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.85 {
		t.Errorf("sharded private accuracy %.3f", acc)
	}
}
