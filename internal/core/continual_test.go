package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// countingSamples wraps a Samples and counts row reads — the probe the
// fail-closed contracts are pinned with.
type countingSamples struct {
	s     sgd.Samples
	reads int
}

func (c *countingSamples) Len() int { return c.s.Len() }
func (c *countingSamples) Dim() int { return c.s.Dim() }
func (c *countingSamples) At(i int) ([]float64, float64) {
	c.reads++
	return c.s.At(i)
}

func wEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestContinualWindowsLedger: N windows spend at most the total, every
// window is audited in the ledger, and the (N+1)-th retrain fails
// closed with ErrOverdraw before a single row read.
func TestContinualWindowsLedger(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := separable(r, 400, 5)
	total := dp.Budget{Epsilon: 2, Delta: 1e-6}
	const N = 3

	tr, err := NewContinualRDP(total, N, loss.NewLogistic(1e-2, 0),
		WithPasses(1), WithBatch(20), WithRadius(100), WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.WindowBudget(); got.Epsilon <= 0 {
		t.Fatalf("WindowBudget = %v", got)
	}

	for i := 0; i < N; i++ {
		res, err := tr.Retrain(context.Background(), s)
		if err != nil {
			t.Fatalf("window %d: %v", i+1, err)
		}
		if res == nil || len(res.W) != s.Dim() {
			t.Fatalf("window %d returned no model", i+1)
		}
		if tr.Window() != i+1 {
			t.Fatalf("Window() = %d after %d retrains", tr.Window(), i+1)
		}
		if !wEqual(tr.Weights(), res.W) {
			t.Fatalf("window %d: trainer warm-start not updated to the released model", i+1)
		}
	}

	l := tr.Ledger()
	if len(l.Entries) != N {
		t.Fatalf("ledger has %d entries, want %d", len(l.Entries), N)
	}
	var sum float64
	for i, e := range l.Entries {
		want := "window[" + string(rune('1'+i)) + "/3]"
		if e.Label != want {
			t.Errorf("entry %d label %q, want %q", i, e.Label, want)
		}
		sum += e.Epsilon
	}
	if sum > total.Epsilon*(1+1e-9) {
		t.Errorf("window spends sum to ε=%v, over total %v", sum, total.Epsilon)
	}
	if sp := l.Spent(); sp.Epsilon > total.Epsilon*(1+1e-9) || sp.Delta > total.Delta*(1+1e-9) {
		t.Errorf("composed spend %v exceeds total %v", sp, total)
	}

	// Window N+1 fails closed: ErrOverdraw identity, zero row reads.
	cs := &countingSamples{s: s}
	if _, err := tr.Retrain(context.Background(), cs); !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("window %d = %v, want ErrOverdraw", N+1, err)
	}
	if cs.reads != 0 {
		t.Errorf("over-budget retrain read %d rows, want 0", cs.reads)
	}
}

// TestContinualResume: a trainer rebuilt from a restored accountant
// continues the window sequence — same per-window budget, same next
// index — instead of re-splitting the smaller remainder.
func TestContinualResume(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := separable(r, 300, 4)
	f := loss.NewLogistic(1e-2, 0)
	total := dp.Budget{Epsilon: 3, Delta: 1e-6}
	const N = 4

	tr, err := NewContinualRDP(total, N, f, WithPasses(1), WithBatch(10), WithRadius(100), WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := tr.Retrain(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}

	// Simulate a restart: ledger travels with the model, accountant and
	// trainer are rebuilt from it.
	acct, err := account.Restore(tr.Ledger())
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewContinualTrainer(acct, N, f, WithPasses(1), WithBatch(10), WithRadius(100), WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Window() != 2 {
		t.Fatalf("resumed Window() = %d, want 2", tr2.Window())
	}
	if tr2.WindowBudget() != tr.WindowBudget() {
		t.Fatalf("resumed WindowBudget = %v, want %v", tr2.WindowBudget(), tr.WindowBudget())
	}
	tr2.SetWarmStart(tr.Weights())

	for i := 2; i < N; i++ {
		if _, err := tr2.Retrain(context.Background(), s); err != nil {
			t.Fatalf("resumed window %d: %v", i+1, err)
		}
	}
	if _, err := tr2.Retrain(context.Background(), s); !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("resumed window %d = %v, want ErrOverdraw", N+1, err)
	}
	if got := len(tr2.Ledger().Entries); got != N {
		t.Fatalf("resumed ledger has %d entries, want %d", got, N)
	}

	// A trainer configured for fewer windows than the ledger records is
	// rejected rather than silently over-spending.
	if _, err := NewContinualTrainer(acct, 1, f); err == nil {
		t.Error("NewContinualTrainer accepted windows < recorded spends")
	}
}

// TestWarmStartParity pins the divergence contract: with the same seed,
// a warm start from the origin is bit-identical to a scratch run (the
// origin IS the scratch start), while a warm start from a nonzero
// released model produces a different iterate — warm starting changes
// the trajectory, not the guarantee.
func TestWarmStartParity(t *testing.T) {
	s := separable(rand.New(rand.NewSource(3)), 500, 6)
	f := loss.NewLogistic(1e-2, 0)
	run := func(w0 []float64) *Result {
		r := rand.New(rand.NewSource(42))
		res, err := TrainCtx(context.Background(), s, f,
			WithBudget(dp.Budget{Epsilon: 1}),
			WithPasses(2), WithBatch(25), WithRadius(100),
			WithWarmStart(w0), WithRand(r))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	scratch := run(nil)
	origin := run(make([]float64, s.Dim()))
	if !wEqual(scratch.W, origin.W) || !wEqual(scratch.NonPrivate, origin.NonPrivate) {
		t.Error("warm start from the origin is not bit-identical to a scratch run")
	}

	warm := run(scratch.W)
	if wEqual(warm.NonPrivate, scratch.NonPrivate) {
		t.Error("warm start from a nonzero model did not change the trajectory")
	}
	if warm.Sensitivity != scratch.Sensitivity {
		t.Errorf("warm start changed the sensitivity: %v vs %v", warm.Sensitivity, scratch.Sensitivity)
	}
}

// TestDeprecatedWrappersBitIdentical: every legacy entry point still
// compiles and produces bit-identical output to the TrainCtx spelling.
func TestDeprecatedWrappersBitIdentical(t *testing.T) {
	s := separable(rand.New(rand.NewSource(5)), 400, 5)
	seed := func() *rand.Rand { return rand.New(rand.NewSource(99)) }
	budget := dp.Budget{Epsilon: 1}

	cases := []struct {
		name   string
		legacy func() (*Result, error)
		modern func() (*Result, error)
	}{
		{
			name: "Train/logistic",
			legacy: func() (*Result, error) {
				return Train(s, loss.NewLogistic(0, 0), Options{Budget: budget, Passes: 2, Batch: 20, Rand: seed()})
			},
			modern: func() (*Result, error) {
				return TrainCtx(context.Background(), s, loss.NewLogistic(0, 0),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRand(seed()))
			},
		},
		{
			name: "PrivateConvexPSGD",
			legacy: func() (*Result, error) {
				return PrivateConvexPSGD(s, loss.NewLogistic(1e-2, 0), Options{Budget: budget, Passes: 2, Batch: 20, Rand: seed()})
			},
			modern: func() (*Result, error) {
				return TrainCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithConvexity(ConvexityConvex),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRand(seed()))
			},
		},
		{
			name: "PrivateStronglyConvexPSGD",
			legacy: func() (*Result, error) {
				return PrivateStronglyConvexPSGD(s, loss.NewLogistic(1e-2, 0), Options{Budget: budget, Passes: 2, Batch: 20, Radius: 100, Rand: seed()})
			},
			modern: func() (*Result, error) {
				return TrainCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithConvexity(ConvexityStronglyConvex),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRadius(100), WithRand(seed()))
			},
		},
		{
			name: "PrivateConvexPSGDCtx",
			legacy: func() (*Result, error) {
				return PrivateConvexPSGDCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRand(seed()))
			},
			modern: func() (*Result, error) {
				return TrainCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithConvexity(ConvexityConvex),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRand(seed()))
			},
		},
		{
			name: "PrivateStronglyConvexPSGDCtx",
			legacy: func() (*Result, error) {
				return PrivateStronglyConvexPSGDCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRadius(100), WithRand(seed()))
			},
			modern: func() (*Result, error) {
				return TrainCtx(context.Background(), s, loss.NewLogistic(1e-2, 0),
					WithConvexity(ConvexityStronglyConvex),
					WithBudget(budget), WithPasses(2), WithBatch(20), WithRadius(100), WithRand(seed()))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.modern()
			if err != nil {
				t.Fatal(err)
			}
			if !wEqual(a.W, b.W) || !wEqual(a.NonPrivate, b.NonPrivate) || a.Sensitivity != b.Sensitivity {
				t.Error("legacy wrapper is not bit-identical to the TrainCtx spelling")
			}
		})
	}
}

// TestConvexityValidation: forcing Algorithm 2 on a merely convex loss
// fails, and out-of-range Convexity values are rejected.
func TestConvexityValidation(t *testing.T) {
	s := separable(rand.New(rand.NewSource(2)), 100, 3)
	r := rand.New(rand.NewSource(2))
	_, err := TrainCtx(context.Background(), s, loss.NewLogistic(0, 0),
		WithConvexity(ConvexityStronglyConvex),
		WithBudget(dp.Budget{Epsilon: 1}), WithRand(r))
	if err == nil || !strings.Contains(err.Error(), "strongly convex") {
		t.Errorf("forcing Algorithm 2 on γ=0 loss: %v", err)
	}
	_, err = TrainCtx(context.Background(), s, loss.NewLogistic(0, 0),
		WithConvexity(Convexity(17)),
		WithBudget(dp.Budget{Epsilon: 1}), WithRand(r))
	if err == nil || !strings.Contains(err.Error(), "Convexity") {
		t.Errorf("out-of-range Convexity: %v", err)
	}
	for c, want := range map[Convexity]string{
		ConvexityAuto: "auto", ConvexityConvex: "convex",
		ConvexityStronglyConvex: "strongly-convex", Convexity(9): "Convexity(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Convexity(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
