package core

import (
	"math/rand"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/vec"
)

// Noise calibration is representation-independent by construction:
// the sensitivity Δ₂ is a pure function of (L, β, γ, m, strategy) and
// never of how rows are stored, and sparse and dense runs consume the
// shared Rand identically (same permutation draws, then the same noise
// draws). So under a fixed seed, a private run over a SparseDataset
// and over its dense materialization must report bit-identical
// Sensitivity and NoiseNorm, and models differing only by the kernels'
// floating-point rounding — the paper's privacy guarantee cannot be
// weakened (or changed at all) by taking the fast path.
func TestPrivateSparseDenseDistributionalIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sp := data.SparseSynthetic(r, 300, 60, 6, 0.02)
	de := sp.ToDense()

	type scenario struct {
		name string
		f    loss.Function
		opt  Options
	}
	mk := func(strategy engine.Strategy, workers, passes int) Options {
		return Options{
			Budget: dp.Budget{Epsilon: 0.5}, Passes: passes, Batch: 5,
			Radius: 100, Strategy: strategy, Workers: workers,
		}
	}
	scenarios := []scenario{
		{"strongly-convex/sequential", loss.NewLogistic(1e-2, 0), mk(engine.Sequential, 1, 3)},
		{"strongly-convex/sharded-3", loss.NewLogistic(1e-2, 0), mk(engine.Sharded, 3, 3)},
		{"strongly-convex/streaming", loss.NewLogistic(1e-2, 0), mk(engine.Streaming, 1, 1)},
		{"convex/sequential", loss.NewLogistic(0, 0), mk(engine.Sequential, 1, 2)},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			optS := sc.opt
			optS.Rand = rand.New(rand.NewSource(99))
			resS, err := Train(sp, sc.f, optS)
			if err != nil {
				t.Fatal(err)
			}
			optD := sc.opt
			optD.Rand = rand.New(rand.NewSource(99))
			resD, err := Train(de, sc.f, optD)
			if err != nil {
				t.Fatal(err)
			}
			if resS.Sensitivity != resD.Sensitivity {
				t.Errorf("Δ₂ depends on representation: sparse %v dense %v",
					resS.Sensitivity, resD.Sensitivity)
			}
			if resS.NoiseNorm != resD.NoiseNorm {
				t.Errorf("noise draw depends on representation: ‖κ‖ sparse %v dense %v",
					resS.NoiseNorm, resD.NoiseNorm)
			}
			if resS.Updates != resD.Updates || resS.Passes != resD.Passes {
				t.Errorf("bookkeeping: sparse %d/%d dense %d/%d",
					resS.Updates, resS.Passes, resD.Updates, resD.Passes)
			}
			// With identical noise, the private outputs differ only by
			// the kernels' rounding.
			if !vec.Equal(resS.W, resD.W, 1e-12) {
				t.Errorf("private models diverged beyond rounding")
			}
			if !vec.Equal(resS.NonPrivate, resD.NonPrivate, 1e-12) {
				t.Errorf("pre-noise models diverged beyond rounding")
			}
		})
	}
}
