package core

import (
	"errors"
	"fmt"

	"boltondp/internal/account/compose"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// GradPerturbSpec configures the gradient-perturbation training
// strategy (DP-SGD): per-example l2 clipping to Clip plus Gaussian
// noise on every summed mini-batch gradient, with the privacy cost
// accounted per step through the subsampled-Gaussian machinery of
// internal/account/compose instead of a single output-perturbation
// release. It is the other half of the private-ERM design space next to
// the paper's bolt-on output perturbation: noisier per step but
// loss-agnostic (no Lipschitz/smoothness constants enter the
// calibration — the clip bounds sensitivity by force) and far cheaper
// under Rényi accounting.
type GradPerturbSpec struct {
	// Clip is the per-example gradient clipping norm C > 0. The l2
	// sensitivity of each clipped batch sum under replace-one adjacency
	// is 2C, which is what the noise is calibrated against.
	Clip float64

	// NoiseMultiplier is σ̃, the per-step Gaussian noise scale in units
	// of the sensitivity (the per-coordinate noise stddev on a summed
	// batch gradient is 2·Clip·σ̃). Zero means "solve it from the
	// budget": the smallest σ̃ whose T steps price within Options.Budget
	// under the accounting rule, found by bisection
	// (compose.SolveSGMSigma).
	NoiseMultiplier float64
}

// PrivateGradPerturbPSGD trains with per-step gradient perturbation
// (DP-SGD) under Options.Budget:
//
//	w_{t+1} = Π_C( w_t − η_t · (Σ_{i∈B_t} clip_C(∇ℓ_i(w_t)) + N(0, (2C·σ̃)²·I)) / (q·m) )
//
// for T = Passes·⌊m/b⌋ steps, each over an INDEPENDENT Poisson
// subsample B_t that includes every example with probability q = b/m
// (sgd.GradPerturb.Poisson) — the sampling scheme the
// subsampled-Gaussian bounds assume. The run is priced as T invocations
// of the subsampled Gaussian mechanism at sampling fraction q under the
// accounting rule (Options.Accounting; default rdp — the rule this
// strategy exists for). Deterministic permutation batches would visit
// every example exactly once per pass and admit NO amplification by
// subsampling, so the engine's usual batching is replaced, not reused.
// The spend is reserved against the accountant — or, without one,
// trial-priced against the budget — BEFORE any row is touched, so an
// over-budget run fails closed with zero work done.
//
// Unlike the output-perturbation trainers every iterate is already
// private (each update is a noisy release and the trajectory is
// post-processing), so Result.NonPrivate is nil and Average /
// AverageTail act on private iterates. The strategy is Sequential-only
// (the subsampled-Gaussian accounting assumes one update stream), and
// every data-dependent side channel is rejected: Tol would invalidate
// the calibrated T, and the Progress hook would release the exact
// per-pass empirical risk outside the accounted budget. FreshPerm does
// not apply — there is no permutation to resample.
func PrivateGradPerturbPSGD(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	if opt.GradPerturb == nil {
		return nil, errors.New("core: PrivateGradPerturbPSGD needs Options.GradPerturb")
	}
	if err := opt.fillBudget(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	spec := *opt.GradPerturb
	if opt.Strategy != engine.Sequential {
		return nil, fmt.Errorf("core: gradient perturbation is Sequential-only (per-step accounting assumes one update stream), got %v", opt.Strategy)
	}
	if opt.Tol > 0 {
		return nil, errors.New("core: gradient perturbation fixes the step count at calibration time; Tol-based early stopping is not allowed")
	}
	if opt.Progress != nil {
		return nil, errors.New("core: gradient perturbation rejects the Progress hook — the per-pass empirical risk is an exact, unaccounted data-dependent release (only the noisy iterates are covered by the budget)")
	}
	if opt.FreshPerm {
		return nil, errors.New("core: gradient perturbation draws an independent Poisson batch every step; FreshPerm does not apply")
	}
	if opt.Budget.Delta <= 0 {
		return nil, fmt.Errorf("core: gradient perturbation is a Gaussian mechanism and needs δ > 0, got %v", opt.Budget)
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("core: empty training set")
	}
	o := opt.withDefaults(m)
	if o.Batch > m {
		o.Batch = m
	}

	// The pricing mirrors the engine's Poisson batching exactly: ⌊m/b⌋
	// updates per pass, each an independent Poisson subsample at
	// inclusion probability q = b/m (expected batch size b).
	updatesPerPass := m / o.Batch
	if updatesPerPass < 1 {
		updatesPerPass = 1
	}
	steps := o.Passes * updatesPerPass
	q := float64(o.Batch) / float64(m)

	rule, err := o.accountingRule()
	if err != nil {
		return nil, err
	}
	sigma := spec.NoiseMultiplier
	if sigma == 0 {
		sigma, err = compose.SolveSGMSigma(rule, q, steps, o.Budget)
		if err != nil {
			return nil, err
		}
	} else if sigma < 0 {
		return nil, fmt.Errorf("core: NoiseMultiplier must be >= 0, got %v", sigma)
	}

	// Fail closed before any row access: reserve the run against the
	// accountant, or — stand-alone — refuse a (σ̃, q, T) whose composed
	// price exceeds the stated budget.
	if o.Accountant != nil {
		label := o.SpendLabel
		if label == "" {
			label = "gradperturb(" + f.Name() + ")"
		}
		if err := o.Accountant.ReserveSubsampledGaussian(label, sigma, q, steps, o.Budget.Delta); err != nil {
			return nil, err
		}
	} else {
		price, err := compose.PriceSGM(rule, sigma, q, steps, o.Budget)
		if err != nil {
			return nil, err
		}
		if price.Epsilon > o.Budget.Epsilon*(1+1e-9) {
			return nil, fmt.Errorf("core: gradperturb run prices at %v under rule %s, over budget %v (raise NoiseMultiplier or the budget)",
				price, rule, o.Budget)
		}
	}

	res, err := engine.Run(s, engine.Config{
		Strategy: engine.Sequential,
		SGD: sgd.Config{
			Loss:        f,
			Step:        gradPerturbStep(&o, f, m),
			Passes:      o.Passes,
			Batch:       o.Batch,
			Radius:      o.Radius,
			Average:     o.Average,
			AverageTail: o.AverageTail,
			Rand:        o.Rand,
			Ctx:         o.Ctx,
			W0:          o.W0,
			GradPerturb: &sgd.GradPerturb{
				Clip:    spec.Clip,
				Sigma:   2 * spec.Clip * sigma,
				Rand:    o.Rand,
				Poisson: true,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	model := res.Model()
	return &Result{
		W: model,
		// Every iterate is private; there is no non-private model to
		// withhold and no single output draw to report a norm for.
		NonPrivate:  nil,
		Sensitivity: 2 * spec.Clip,
		NoiseNorm:   0,
		Updates:     res.Updates,
		Passes:      res.Passes,
	}, nil
}

// gradPerturbStep picks the step schedule: the convex families apply
// unchanged (the noise calibration is schedule-independent — the clip,
// not the step size, bounds sensitivity).
func gradPerturbStep(o *Options, f loss.Function, m int) sgd.Schedule {
	p := f.Params()
	switch o.Step {
	case StepDecreasing:
		return sgd.DecreasingConvex(p.Beta, m, o.C)
	case StepSqrt:
		return sgd.SqrtConvex(p.Beta, m, o.C)
	default:
		eta := o.Eta
		if p.Beta > 0 && eta > 2/p.Beta {
			eta = 2 / p.Beta
		}
		return sgd.Constant(eta)
	}
}

// accountingRule resolves the composition rule a run calibrates and
// reserves under: Options.Accounting when set (which must then agree
// with the accountant's rule, if one is attached), else the
// accountant's own rule, else — for gradient perturbation only — rdp,
// the rule the strategy exists for.
func (o *Options) accountingRule() (string, error) {
	rule := compose.Normalize(o.Accounting)
	if o.Accounting == "" {
		if o.Accountant != nil {
			return o.Accountant.Rule(), nil
		}
		if o.GradPerturb != nil {
			return compose.RuleRDP, nil
		}
		return rule, nil
	}
	if _, err := compose.New(rule); err != nil {
		return "", err
	}
	if o.Accountant != nil && o.Accountant.Rule() != rule {
		return "", fmt.Errorf("core: Options.Accounting=%q disagrees with the accountant's rule %q — one composition authority per run",
			rule, o.Accountant.Rule())
	}
	return rule, nil
}
