package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func separable(r *rand.Rand, m, d int) *sgd.SliceSamples {
	s := &sgd.SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		if math.Abs(x[0]) < 0.3 {
			x[0] = math.Copysign(0.3, x[0])
		}
		vec.Normalize(x)
		s.X[i] = x
		s.Y[i] = math.Copysign(1, x[0])
	}
	return s
}

func TestPrivateConvexPSGDBasic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := separable(r, 2000, 5)
	f := loss.NewLogistic(0, 0)
	res, err := PrivateConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1},
		Passes: 2,
		Batch:  50,
		Rand:   r,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sensitivity = 2kLη/b with η = 1/√m.
	want := 2 * 2 * 1 * (1 / math.Sqrt(2000)) / 50
	if math.Abs(res.Sensitivity-want) > 1e-12 {
		t.Errorf("Sensitivity = %v, want %v", res.Sensitivity, want)
	}
	if res.NoiseNorm <= 0 {
		t.Error("no noise was added")
	}
	if vec.Equal(res.W, res.NonPrivate, 0) {
		t.Error("private model equals non-private model")
	}
	if res.Updates != 2*2000/50 {
		t.Errorf("Updates = %d", res.Updates)
	}
	// The private model should still beat the zero model on this easy task.
	risk0 := sgd.EmpiricalRisk(s, f, make([]float64, 5))
	risk := sgd.EmpiricalRisk(s, f, res.W)
	if risk >= risk0 {
		t.Errorf("private model risk %v not better than zero model %v", risk, risk0)
	}
}

func TestPrivateConvexStepFamilies(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := separable(r, 500, 4)
	f := loss.NewLogistic(0, 0)
	for _, kind := range []StepKind{StepConstant, StepDecreasing, StepSqrt} {
		res, err := PrivateConvexPSGD(s, f, Options{
			Budget: dp.Budget{Epsilon: 1},
			Passes: 3,
			Step:   kind,
			Rand:   r,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Sensitivity <= 0 {
			t.Errorf("%v: sensitivity %v", kind, res.Sensitivity)
		}
	}
	// Unknown kind rejected.
	if _, err := PrivateConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Step: StepKind(99), Rand: r,
	}); err == nil {
		t.Error("unknown StepKind accepted")
	}
}

func TestPrivateConvexEtaClamped(t *testing.T) {
	// Huber with h = 0.01 has β = 50, so 2/β = 0.04 < 1/√m for small m.
	r := rand.New(rand.NewSource(3))
	s := separable(r, 100, 3)
	f := loss.NewHuber(0.01, 0, 0)
	res, err := PrivateConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 1, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sensitivity must reflect the clamped step 2/β, not 1/√m = 0.1.
	want := 2 * 1 * 1 * (2.0 / 50.0) / 1
	if math.Abs(res.Sensitivity-want) > 1e-12 {
		t.Errorf("Sensitivity = %v, want clamped %v", res.Sensitivity, want)
	}
}

func TestPrivateConvexRejectsTol(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := separable(r, 50, 2)
	_, err := PrivateConvexPSGD(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Tol: 1e-3, Rand: r,
	})
	if err == nil || !strings.Contains(err.Error(), "not private") {
		t.Errorf("convex Tol should be rejected, got %v", err)
	}
}

func TestPrivateStronglyConvexPSGDBasic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := separable(r, 3000, 5)
	lambda := 1e-3
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	res, err := PrivateStronglyConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1},
		Passes: 5,
		Batch:  50,
		Radius: 1 / lambda,
		Rand:   r,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default: the sound b-independent bound 2L/(γm) (see the
	// reproduction finding on dp.SensitivityStronglyConvex).
	want := 2 * p.L / (p.Gamma * 3000)
	if math.Abs(res.Sensitivity-want) > 1e-15 {
		t.Errorf("Sensitivity = %v, want %v", res.Sensitivity, want)
	}
	if res.Passes != 5 {
		t.Errorf("Passes = %d", res.Passes)
	}
	// Opt-in paper calibration divides by b.
	pres, err := PrivateStronglyConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1},
		Passes: 5, Batch: 50, Radius: 1 / lambda, Rand: r,
		PaperBatchSensitivity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pres.Sensitivity-want/50) > 1e-15 {
		t.Errorf("paper calibration sensitivity = %v, want %v", pres.Sensitivity, want/50)
	}
}

func TestStronglyConvexSensitivityIndependentOfK(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := separable(r, 500, 3)
	f := loss.NewLogistic(1e-2, 0)
	var sens []float64
	for _, k := range []int{1, 5, 20} {
		res, err := PrivateStronglyConvexPSGD(s, f, Options{
			Budget: dp.Budget{Epsilon: 1}, Passes: k, Rand: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		sens = append(sens, res.Sensitivity)
	}
	if sens[0] != sens[1] || sens[1] != sens[2] {
		t.Errorf("strongly convex sensitivity varies with k: %v", sens)
	}
}

func TestConvexSensitivityGrowsWithK(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := separable(r, 500, 3)
	f := loss.NewLogistic(0, 0)
	get := func(k int) float64 {
		res, err := PrivateConvexPSGD(s, f, Options{
			Budget: dp.Budget{Epsilon: 1}, Passes: k, Rand: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Sensitivity
	}
	if !(get(1) < get(10) && get(10) < get(20)) {
		t.Error("convex sensitivity should grow with passes")
	}
}

func TestStronglyConvexRequiresStrongConvexity(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := separable(r, 50, 2)
	_, err := PrivateStronglyConvexPSGD(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r,
	})
	if err == nil {
		t.Error("γ=0 loss accepted by the strongly convex algorithm")
	}
}

func TestStronglyConvexTolEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := separable(r, 500, 4)
	f := loss.NewLogistic(1e-2, 0)
	res, err := PrivateStronglyConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1},
		Passes: 100,
		Batch:  10,
		Tol:    1e-4,
		Rand:   r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes >= 100 {
		t.Error("Tol early stopping did not trigger")
	}
}

func TestTrainDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	s := separable(r, 200, 3)
	// Strongly convex path.
	res, err := Train(s, loss.NewLogistic(1e-2, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alg 2's sensitivity (2L/γm), not Alg 1's.
	p := loss.NewLogistic(1e-2, 0).Params()
	want := 2 * p.L / (p.Gamma * 200)
	if math.Abs(res.Sensitivity-want) > 1e-12 {
		t.Errorf("Train chose the wrong algorithm: sens %v want %v", res.Sensitivity, want)
	}
	// Convex path.
	res, err = Train(s, loss.NewLogistic(0, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	want = 2 * 1 / math.Sqrt(200)
	if math.Abs(res.Sensitivity-want) > 1e-12 {
		t.Errorf("convex dispatch sens %v want %v", res.Sensitivity, want)
	}
}

func TestGaussianBudgetUsed(t *testing.T) {
	// With δ>0 and a large d the Gaussian mechanism adds much less
	// noise than pure ε-DP at the same sensitivity — check the orders.
	r := rand.New(rand.NewSource(11))
	s := separable(r, 2000, 50)
	f := loss.NewLogistic(0, 0)
	avg := func(b dp.Budget) float64 {
		var sum float64
		for i := 0; i < 20; i++ {
			res, err := PrivateConvexPSGD(s, f, Options{Budget: b, Passes: 1, Batch: 50, Rand: r})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.NoiseNorm
		}
		return sum / 20
	}
	pure := avg(dp.Budget{Epsilon: 0.1})
	gauss := avg(dp.Budget{Epsilon: 0.1, Delta: 1e-6})
	if gauss >= pure {
		t.Errorf("Gaussian noise (%v) should be below pure ε-DP noise (%v) at d=50", gauss, pure)
	}
}

func TestOptionsValidation(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	s := separable(r, 50, 2)
	f := loss.NewLogistic(0, 0)
	cases := []struct {
		name string
		opt  Options
	}{
		{"bad budget", Options{Rand: r}},
		{"nil rand", Options{Budget: dp.Budget{Epsilon: 1}}},
		{"bad C", Options{Budget: dp.Budget{Epsilon: 1}, C: 1.5, Rand: r}},
		{"negative passes", Options{Budget: dp.Budget{Epsilon: 1}, Passes: -1, Rand: r}},
	}
	for _, c := range cases {
		if _, err := PrivateConvexPSGD(s, f, c.opt); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Empty training set.
	if _, err := PrivateConvexPSGD(&sgd.SliceSamples{}, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r,
	}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := PrivateStronglyConvexPSGD(&sgd.SliceSamples{}, loss.NewLogistic(1e-2, 0), Options{
		Budget: dp.Budget{Epsilon: 1}, Rand: r,
	}); err == nil {
		t.Error("empty set accepted (strongly convex)")
	}
}

func TestNoiseShrinksWithEpsilon(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := separable(r, 1000, 10)
	f := loss.NewLogistic(1e-3, 0)
	avg := func(eps float64) float64 {
		var sum float64
		for i := 0; i < 30; i++ {
			res, err := PrivateStronglyConvexPSGD(s, f, Options{
				Budget: dp.Budget{Epsilon: eps}, Rand: r,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.NoiseNorm
		}
		return sum / 30
	}
	if lo, hi := avg(4), avg(0.1); lo >= hi {
		t.Errorf("noise at ε=4 (%v) should be below noise at ε=0.1 (%v)", lo, hi)
	}
}

func TestAveragingOption(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	s := separable(r, 300, 3)
	f := loss.NewLogistic(0, 0)
	res, err := PrivateConvexPSGD(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Average: true, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonPrivate == nil {
		t.Fatal("missing NonPrivate model")
	}
	// Averaged model norm should be finite and sane.
	if n := vec.Norm(res.NonPrivate); math.IsNaN(n) || n > 100 {
		t.Errorf("averaged model norm = %v", n)
	}
}

func TestStepKindString(t *testing.T) {
	if StepConstant.String() != "constant" || StepDecreasing.String() != "decreasing" ||
		StepSqrt.String() != "sqrt" || StepKind(9).String() == "" {
		t.Error("StepKind.String broken")
	}
}
