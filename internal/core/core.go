// Package core implements the paper's primary contribution: the bolt-on
// differentially private PSGD algorithms — Algorithm 1 (convex) and
// Algorithm 2 (strongly convex) — together with all the extensions of
// §3.2.3 (mini-batching, model averaging, fresh permutations,
// constrained optimization, (ε,δ)-DP via Gaussian noise) and the three
// convex step-size families of Corollaries 1–3.
//
// The defining property of the approach is preserved structurally: this
// package calls the execution engine strictly as a black box
// (engine.Run with no GradNoise hook) and perturbs only the returned
// model, with noise calibrated by the sensitivity calculus in
// internal/dp. The engine strategy — sequential, sharded across
// workers, or streaming — is a run-time choice (Options.Strategy), and
// the calibration here is the only place that has to know about it:
// sharded runs evaluate the per-shard bound at the smallest shard and
// divide by the worker count (see dp.SensitivityShardedStronglyConvex),
// streaming runs are pinned to a single pass. Swapping in any other
// conforming SGD implementation — e.g. the Bismarck-style in-RDBMS
// engine in internal/bismarck — requires no change here, which is the
// paper's "ease of integration" claim in code form.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/rng"
	"boltondp/internal/sgd"
)

// StepKind selects the convex step-size family (Table 4 + Cors 2–3).
type StepKind int

const (
	// StepConstant is η_t = η (Algorithm 1; default η = 1/√m).
	StepConstant StepKind = iota
	// StepDecreasing is η_t = 2/(β(t+m^c)) (Corollary 2).
	StepDecreasing
	// StepSqrt is η_t = 2/(β(√t+m^c)) (Corollary 3).
	StepSqrt
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepConstant:
		return "constant"
	case StepDecreasing:
		return "decreasing"
	case StepSqrt:
		return "sqrt"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Convexity selects which of the paper's two algorithms a TrainCtx run
// uses. The zero value (ConvexityAuto) derives it from the loss — the
// right choice everywhere outside reproduction studies that need
// Algorithm 1's noise on a strongly convex objective.
type Convexity int

const (
	// ConvexityAuto derives the algorithm from the loss: Algorithm 2
	// when f.Params().StronglyConvex(), Algorithm 1 otherwise.
	ConvexityAuto Convexity = iota
	// ConvexityConvex forces Algorithm 1 (the convex trainer). Legal
	// for any convex loss, including strongly convex ones — Algorithm 2
	// would give strictly less noise there, which is exactly why a
	// reproduction might force the comparison.
	ConvexityConvex
	// ConvexityStronglyConvex forces Algorithm 2; the run fails if the
	// loss is not strongly convex (γ = 0).
	ConvexityStronglyConvex
)

// String implements fmt.Stringer.
func (c Convexity) String() string {
	switch c {
	case ConvexityAuto:
		return "auto"
	case ConvexityConvex:
		return "convex"
	case ConvexityStronglyConvex:
		return "strongly-convex"
	default:
		return fmt.Sprintf("Convexity(%d)", int(c))
	}
}

// Options configures a private PSGD run. The zero value plus a Budget
// and a Rand is usable: one pass, batch 1, paper-default step sizes.
type Options struct {
	// Budget is the privacy guarantee to enforce. Delta = 0 gives pure
	// ε-DP (Theorem 4 / 5); Delta > 0 gives (ε,δ)-DP (Theorem 6 / 7).
	Budget dp.Budget

	// Passes is k, the number of passes over the data (default 1).
	Passes int

	// Batch is the mini-batch size b (default 1). The convex
	// constant-step sensitivity improves by the factor b (§3.2.3); for
	// the other schedules see the batch-aware forms in internal/dp.
	Batch int

	// Eta is the constant step size for the convex algorithm. Zero
	// means the paper's default 1/√m (Table 4). It is clamped to 2/β,
	// the validity boundary of Lemma 1.1; the clamped value is used in
	// the sensitivity too, so privacy never degrades.
	Eta float64

	// Step selects the convex step-size family. Ignored by the
	// strongly convex algorithm, which always uses min(1/β, 1/(γt)).
	Step StepKind

	// C is the m^c offset exponent for StepDecreasing/StepSqrt
	// (default 0.5). Must lie in [0, 1).
	C float64

	// Radius constrains the hypothesis space to the L2 ball of this
	// radius via projected updates (rule (7)). Non-positive means
	// unconstrained. The paper uses R = 1/λ for strongly convex runs.
	Radius float64

	// Average returns the uniform iterate average instead of the last
	// iterate (Lemma 10: never hurts sensitivity).
	Average bool

	// AverageTail returns the average of the last ⌈ln T⌉ iterates — the
	// other scheme Lemma 10 covers. Mutually exclusive with Average.
	AverageTail bool

	// FreshPerm resamples the permutation each pass (§3.2.3).
	FreshPerm bool

	// PaperBatchSensitivity calibrates the strongly convex noise to the
	// paper's Δ₂ = 2L/(γmb) (§3.2.3's blanket factor-b claim applied to
	// Algorithm 2). Our analysis and brute-force neighboring-dataset
	// runs show that bound is violated for b > 1 (see the note on
	// dp.SensitivityStronglyConvex), so the default is the sound
	// b-independent Δ₂ = 2L/(γm). Set this only to reproduce the
	// paper's reported figures; do not rely on it for real privacy.
	PaperBatchSensitivity bool

	// Tol enables the strongly-convex "oblivious k" strategy of §4.3:
	// run until the per-pass risk decrease falls below Tol or Passes is
	// reached. Only legal for the strongly convex algorithm, whose
	// sensitivity does not depend on k; the convex constructor rejects
	// it because its noise must be fixed in advance.
	Tol float64

	// Strategy selects the execution-engine strategy (internal/engine):
	// Sequential (the default — Algorithms 1–2 verbatim), Sharded
	// (Workers disjoint shards with per-epoch model averaging; noise is
	// calibrated for the averaged model), or Streaming (one in-order
	// pass, the online scenario; Passes must be ≤ 1).
	Strategy engine.Strategy

	// Workers is the shard count for the Sharded strategy (default 1;
	// one worker is executed exactly as Sequential). Setting Workers > 1
	// with any other strategy is an error.
	Workers int

	// KernelWorkers is the intra-batch parallelism degree of the SGD
	// kernel (sgd.Config.KernelWorkers; 0 or 1 = sequential). Unlike
	// Workers it changes neither the execution strategy nor the
	// sensitivity calculus: the parallel kernel is bit-identical to the
	// sequential one for every value, so no noise recalibration exists
	// or is needed. Valid under every strategy.
	KernelWorkers int

	// Rand is the randomness source for the permutation(s), the worker
	// seeds and the noise.
	Rand *rand.Rand

	// Ctx, when non-nil, makes the run cancellable: the execution
	// engine polls it once per mini-batch update (every strategy), and
	// Train returns ctx.Err() within one epoch slice of cancellation.
	// Prefer TrainCtx, which sets it from its first argument.
	Ctx context.Context

	// Accountant, when non-nil, is the privacy-budget accountant this
	// run draws from: Budget is reserved against it (under SpendLabel)
	// before any training work, and an over-budget request fails closed
	// with account.ErrOverdraw. When Budget is the zero value, the
	// entire remaining budget is drawn.
	Accountant *account.Accountant

	// Accounting names the composition rule ("simple", "advanced",
	// "rdp") the run is priced under. Empty defers to the accountant's
	// rule (or "simple" stand-alone; "rdp" for gradient perturbation,
	// the rule that strategy exists for). When both Accounting and
	// Accountant are set they must agree — one composition authority
	// per run.
	Accounting string

	// GradPerturb, when non-nil, switches Train to the
	// gradient-perturbation strategy (PrivateGradPerturbPSGD): per-step
	// clipped-gradient noise accounted through the subsampled-Gaussian
	// composer instead of the paper's single output perturbation.
	GradPerturb *GradPerturbSpec

	// SpendLabel is the accountant ledger label for this run's
	// reservation. Empty means "train(<loss name>)".
	SpendLabel string

	// Convexity selects the algorithm for Train/TrainCtx dispatch. The
	// zero value derives it from the loss (Algorithm 2 iff strongly
	// convex). Ignored when GradPerturb is set.
	Convexity Convexity

	// W0 is the warm-start point: the iterate the engine starts from
	// instead of the origin. It must have the data's dimension. The
	// paper's sensitivity bounds hold for any data-independent common
	// start, and a previously *released* private model is safe by
	// post-processing — which is exactly how ContinualTrainer uses it.
	// Never warm-start from an unreleased (non-private) iterate.
	W0 []float64

	// Progress, when non-nil, is called after every epoch (pass, or
	// sharded merge epoch) with the 1-based epoch number and the
	// empirical risk of the current (pre-noise) iterate. Setting it
	// costs one extra pass over the data per epoch. Gradient
	// perturbation rejects it: there the exact risk is a data-dependent
	// release outside the accounted budget (output perturbation keeps
	// the iterates on the trusted side until the single noisy release,
	// so the hook is a trusted-side debug tap there).
	Progress func(epoch int, risk float64)
}

func (o *Options) withDefaults(m int) Options {
	out := *o
	if out.Passes == 0 {
		out.Passes = 1
	}
	if out.Batch == 0 {
		out.Batch = 1
	}
	if out.C == 0 {
		out.C = 0.5
	}
	if out.Eta == 0 {
		out.Eta = 1 / math.Sqrt(float64(m))
	}
	return out
}

func (o *Options) validate() error {
	if err := o.Budget.Validate(); err != nil {
		return err
	}
	if o.Passes < 0 || o.Batch < 0 {
		return fmt.Errorf("core: negative Passes (%d) or Batch (%d)", o.Passes, o.Batch)
	}
	if o.C < 0 || o.C >= 1 {
		return fmt.Errorf("core: C must be in [0,1), got %v", o.C)
	}
	if o.Rand == nil {
		return errors.New("core: Options.Rand is required")
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers (%d)", o.Workers)
	}
	if o.KernelWorkers < 0 {
		return fmt.Errorf("core: negative KernelWorkers (%d)", o.KernelWorkers)
	}
	if o.Workers > 1 && o.Strategy != engine.Sharded {
		return fmt.Errorf("core: Workers=%d requires the Sharded strategy, got %v", o.Workers, o.Strategy)
	}
	if o.Convexity < ConvexityAuto || o.Convexity > ConvexityStronglyConvex {
		return fmt.Errorf("core: unknown Convexity %v", o.Convexity)
	}
	if _, err := o.accountingRule(); err != nil {
		return err
	}
	return nil
}

// shardSize returns the dataset size the step schedule and the
// per-shard sensitivity are evaluated at: the smallest shard for
// Sharded runs (the smallest shard has the largest bound), m otherwise.
func (o *Options) shardSize(m int) (int, error) {
	if o.Strategy != engine.Sharded || o.Workers <= 1 {
		return m, nil
	}
	return engine.ShardSize(m, o.Workers)
}

// effWorkers is the averaging divisor the sharded sensitivity calculus
// applies (1 for everything but a multi-worker Sharded run).
func (o *Options) effWorkers() int {
	if o.Strategy == engine.Sharded && o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// checkStreaming enforces the single-pass constraint of the streaming
// strategy, whose sensitivity is calibrated for exactly one pass.
func (o *Options) checkStreaming() error {
	if o.Strategy == engine.Streaming && o.Passes != 1 {
		return fmt.Errorf("core: Streaming execution is single-pass; got Passes=%d (leave Passes at 0 or set it to 1)", o.Passes)
	}
	return nil
}

// fillBudget resolves a zero Budget against the accountant (draw
// everything that remains). Must run before validate, which rejects a
// zero budget. An exhausted accountant fails closed here with
// ErrOverdraw — the same error identity every other over-budget path
// reports — rather than leaking a zero-ε validation error.
func (o *Options) fillBudget() error {
	if o.Accountant == nil || o.Budget != (dp.Budget{}) {
		return nil
	}
	rem := o.Accountant.Remaining()
	if rem.Epsilon <= 0 {
		return fmt.Errorf("%w: drawing the remainder of an exhausted accountant (total %v)",
			account.ErrOverdraw, o.Accountant.Total())
	}
	o.Budget = rem
	return nil
}

// reserveBudget debits the run's budget from its accountant, when one
// is attached. Called after all parameter validation and before the
// engine touches a single row, so an over-budget request fails closed
// with no training work done. Reservations are never refunded: the
// ledger records intent to release, the conservative reading of simple
// composition (a failed run after this point still forfeits its spend).
//
// The reservation is typed so the accountant's composition rule can
// price it tightly: a pure release as an ε-DP event (advanced/RDP give
// it a sublinear composed cost), an approximate one as the Gaussian
// mechanism at the multiplier the calibration in dp.Budget.Perturb
// actually uses. Under the simple rule both downgrade to the plain
// (ε, δ) entry this method always recorded — bit-identical ledgers.
func (o *Options) reserveBudget(f loss.Function) error {
	if o.Accountant == nil {
		return nil
	}
	label := o.SpendLabel
	if label == "" {
		label = "train(" + f.Name() + ")"
	}
	if o.Budget.Pure() {
		return o.Accountant.ReservePure(label, o.Budget.Epsilon)
	}
	return o.Accountant.ReserveGaussian(label,
		rng.GaussianSigma(1, o.Budget.Epsilon, o.Budget.Delta), 1, o.Budget)
}

// Result reports one private training run.
type Result struct {
	// W is the differentially private model — the only field safe to
	// release under the stated budget.
	W []float64

	// NonPrivate is the pre-noise SGD output. It is NOT private and is
	// exposed only so experiments can report the accuracy cost of the
	// perturbation. Never publish it.
	NonPrivate []float64

	// Sensitivity is the L2-sensitivity Δ₂ the noise was calibrated to.
	Sensitivity float64

	// NoiseNorm is ‖κ‖, the realized noise magnitude.
	NoiseNorm float64

	// Updates and Passes echo the underlying engine run. Under the
	// Sharded strategy Updates is summed across workers and Passes
	// counts merge epochs.
	Updates int
	Passes  int
}

// PrivateConvexPSGD runs Algorithm 1 directly.
//
// Deprecated: call TrainCtx with WithConvexity(ConvexityConvex); this
// wrapper remains for compatibility and is bit-identical to that form.
func PrivateConvexPSGD(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return privateConvexPSGD(s, f, opt)
}

// privateConvexPSGD is Algorithm 1 (plus extensions): k-pass PSGD with
// the selected convex step family, output-perturbed with sensitivity
//
//	Δ₂ = 2kLη/b                               (constant, Corollary 1)
//	Δ₂ = (4L/β)(1/(b·m^c) + ln k/m)           (decreasing, Corollary 2, batch-aware)
//	Δ₂ = (4L/(bβ))Σ_j 1/√(j·m/b+1+m^c)        (square-root, Corollary 3, batch-aware)
//
// under Options.Budget. Under the Sharded strategy the schedule and the
// bounds above are evaluated at the smallest shard size and divided by
// the worker count (the averaged-model sensitivity); under Streaming,
// k is pinned to 1. The loss must be convex (γ may be 0; a strongly
// convex loss is allowed but Algorithm 2 gives strictly less noise).
func privateConvexPSGD(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	if err := opt.fillBudget(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Tol > 0 {
		return nil, errors.New("core: Tol-based early stopping is not private in the convex case (noise depends on k); fix Passes instead")
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("core: empty training set")
	}
	n, err := opt.shardSize(m)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults(n) // paper defaults at the per-shard size
	if err := o.checkStreaming(); err != nil {
		return nil, err
	}
	p := f.Params()
	workers := o.effWorkers()
	if o.Batch > n {
		o.Batch = n // mirror the engine's clamp so Δ₂ is not over-divided
	}

	var step sgd.Schedule
	var sens float64
	switch o.Step {
	case StepConstant:
		eta := math.Min(o.Eta, 2/p.Beta) // Lemma 1.1 validity
		step = sgd.Constant(eta)
		sens = dp.SensitivityShardedConvexConstant(p.L, eta, o.Passes, o.Batch, workers)
	case StepDecreasing:
		step = sgd.DecreasingConvex(p.Beta, n, o.C)
		sens = dp.SensitivityShardedConvexDecreasing(p.L, p.Beta, o.Passes, n, o.Batch, o.C, workers)
	case StepSqrt:
		step = sgd.SqrtConvex(p.Beta, n, o.C)
		sens = dp.SensitivityShardedConvexSqrt(p.L, p.Beta, o.Passes, n, o.Batch, o.C, workers)
	default:
		return nil, fmt.Errorf("core: unknown StepKind %v", o.Step)
	}

	if err := o.reserveBudget(f); err != nil {
		return nil, err
	}
	res, err := engine.Run(s, engine.Config{
		Strategy: o.Strategy,
		Workers:  o.Workers,
		SGD: sgd.Config{
			Loss:          f,
			Step:          step,
			Passes:        o.Passes,
			Batch:         o.Batch,
			Radius:        o.Radius,
			Average:       o.Average,
			AverageTail:   o.AverageTail,
			FreshPerm:     o.FreshPerm,
			KernelWorkers: o.KernelWorkers,
			Rand:          o.Rand,
			Ctx:           o.Ctx,
			Progress:      o.Progress,
			W0:            o.W0,
		},
	})
	if err != nil {
		return nil, err
	}
	return perturb(&res.Result, o, sens)
}

// PrivateStronglyConvexPSGD runs Algorithm 2 directly.
//
// Deprecated: call TrainCtx with WithConvexity(ConvexityStronglyConvex);
// this wrapper remains for compatibility and is bit-identical to that
// form.
func PrivateStronglyConvexPSGD(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return privateStronglyConvexPSGD(s, f, opt)
}

// privateStronglyConvexPSGD is Algorithm 2 (plus extensions): k-pass
// PSGD at η_t = min(1/β, 1/(γt)), output-perturbed with
// Δ₂ = 2L/(γm) (Lemma 8, sound batch-aware form) — independent of k,
// so Options.Tol early
// stopping is allowed (§4.3 "the number of passes k is oblivious to
// private SGD"). Under the Sharded strategy the bound is evaluated at
// the smallest shard and divided by the worker count, which for equal
// shards is exactly the sequential 2L/(γm): parallelism is privacy-free
// (the paper's multicore punchline). The loss must be γ-strongly
// convex.
func privateStronglyConvexPSGD(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	if err := opt.fillBudget(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	m := s.Len()
	if m == 0 {
		return nil, errors.New("core: empty training set")
	}
	p := f.Params()
	if !p.StronglyConvex() {
		return nil, fmt.Errorf("core: loss %q is not strongly convex (γ=0); use the convex algorithm (WithConvexity(ConvexityConvex))", f.Name())
	}
	n, err := opt.shardSize(m)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults(n)
	if err := o.checkStreaming(); err != nil {
		return nil, err
	}
	workers := o.effWorkers()
	if o.Batch > n {
		o.Batch = n // mirror the engine's clamp so the paper-batch Δ₂ is not over-divided
	}

	if err := o.reserveBudget(f); err != nil {
		return nil, err
	}
	res, err := engine.Run(s, engine.Config{
		Strategy: o.Strategy,
		Workers:  o.Workers,
		SGD: sgd.Config{
			Loss:          f,
			Step:          sgd.StronglyConvexPaper(p.Beta, p.Gamma),
			Passes:        o.Passes,
			Batch:         o.Batch,
			Radius:        o.Radius,
			Average:       o.Average,
			AverageTail:   o.AverageTail,
			FreshPerm:     o.FreshPerm,
			KernelWorkers: o.KernelWorkers,
			Rand:          o.Rand,
			Tol:           o.Tol,
			Ctx:           o.Ctx,
			Progress:      o.Progress,
			W0:            o.W0,
		},
	})
	if err != nil {
		return nil, err
	}
	var sens float64
	if o.PaperBatchSensitivity {
		sens = dp.SensitivityStronglyConvexPaperBatch(p.L, p.Gamma, n, o.Batch) / float64(workers)
	} else {
		sens = dp.SensitivityShardedStronglyConvex(p.L, p.Gamma, n, workers)
	}
	return perturb(&res.Result, o, sens)
}

// Train runs one private training job with a struct-literal Options.
//
// Deprecated: call TrainCtx, the one documented entry point; this
// wrapper remains for compatibility and is bit-identical to
// TrainCtx(opt.Ctx, s, f, ...) with the equivalent options.
func Train(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	return train(s, f, opt)
}

// train dispatches to the applicable algorithm: gradient perturbation
// when Options.GradPerturb is set, else by Options.Convexity —
// Algorithm 2 when forced or (under ConvexityAuto) when the loss is
// strongly convex, Algorithm 1 otherwise.
func train(s sgd.Samples, f loss.Function, opt Options) (*Result, error) {
	if opt.GradPerturb != nil {
		return PrivateGradPerturbPSGD(s, f, opt)
	}
	switch opt.Convexity {
	case ConvexityConvex:
		return privateConvexPSGD(s, f, opt)
	case ConvexityStronglyConvex:
		return privateStronglyConvexPSGD(s, f, opt)
	}
	if f.Params().StronglyConvex() {
		return privateStronglyConvexPSGD(s, f, opt)
	}
	return privateConvexPSGD(s, f, opt)
}

// perturb applies the output perturbation step (lines 3–5 of
// Algorithms 1–2) to the black-box SGD result.
func perturb(res *sgd.Result, o Options, sens float64) (*Result, error) {
	model := res.Model()
	private, err := o.Budget.Perturb(o.Rand, model, sens)
	if err != nil {
		return nil, err
	}
	var noise float64
	for i := range model {
		d := private[i] - model[i]
		noise += d * d
	}
	return &Result{
		W:           private,
		NonPrivate:  model,
		Sensitivity: sens,
		NoiseNorm:   math.Sqrt(noise),
		Updates:     res.Updates,
		Passes:      res.Passes,
	}, nil
}
