package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// jobSeq distinguishes jobs issued by this process, so concurrent
// TrainDistributed calls sharing a worker pool never collide on shard
// state.
var jobSeq atomic.Uint64

// TrainDistributed runs the bolt-on private PSGD appropriate for the
// loss on a distributed coordinator/worker pool (internal/dist) instead
// of the in-process engine. It is the distributed counterpart of
// TrainCtx with the Sharded strategy: WithStrategy(engine.Sharded, P)
// selects the shard count (default 1), the noise is calibrated exactly
// as PrivateConvexPSGD / PrivateStronglyConvexPSGD calibrate a sharded
// run, and the result — model, ledger entry, noise draw — is
// bit-identical to the single-process run under the same seed (the
// parity contract pinned by the internal/dist tests).
//
// Options that require mid-run access to the whole dataset or change
// the randomness schedule are rejected: Tol and Progress (per-epoch
// risk needs every row), AverageTail (not supported under Sharded),
// and FreshPerm (the sharded executor resamples per-shard permutations
// every epoch already; the flag only has meaning for multi-pass
// sequential runs, whose distributed form ships one pinned
// permutation).
func TrainDistributed(ctx context.Context, coord *dist.Coordinator, src dist.Source, f loss.Function, opts ...Option) (*Result, error) {
	o := buildOptions(ctx, opts)
	if err := o.fillBudget(); err != nil {
		return nil, err
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	o.Strategy = engine.Sharded
	if err := o.validate(); err != nil {
		return nil, err
	}
	switch {
	case o.Tol > 0:
		return nil, errors.New("core: Tol-based early stopping needs per-epoch risk over the whole dataset; not available distributed")
	case o.Progress != nil:
		return nil, errors.New("core: Progress needs per-epoch risk over the whole dataset; not available distributed")
	case o.AverageTail:
		return nil, errors.New("core: AverageTail is not supported under Sharded execution")
	case o.FreshPerm:
		return nil, errors.New("core: FreshPerm does not apply to distributed runs (sharded epochs already resample; single-shard runs ship one pinned permutation)")
	}
	m := src.Rows()
	if m == 0 {
		return nil, errors.New("core: empty training set")
	}
	n, err := o.shardSize(m)
	if err != nil {
		return nil, err
	}
	o = o.withDefaults(n)
	p := f.Params()
	workers := o.effWorkers()
	if o.Batch > n {
		o.Batch = n // mirror the engine's clamp so Δ₂ is not over-divided
	}

	var stepSpec dist.StepSpec
	var sens float64
	if p.StronglyConvex() {
		stepSpec = dist.StepSpec{Kind: dist.StepStronglyConvex, Beta: p.Beta, Gamma: p.Gamma}
		if o.PaperBatchSensitivity {
			sens = dp.SensitivityStronglyConvexPaperBatch(p.L, p.Gamma, n, o.Batch) / float64(workers)
		} else {
			sens = dp.SensitivityShardedStronglyConvex(p.L, p.Gamma, n, workers)
		}
	} else {
		switch o.Step {
		case StepConstant:
			eta := math.Min(o.Eta, 2/p.Beta) // Lemma 1.1 validity
			stepSpec = dist.StepSpec{Kind: dist.StepConstant, Eta: eta}
			sens = dp.SensitivityShardedConvexConstant(p.L, eta, o.Passes, o.Batch, workers)
		case StepDecreasing:
			stepSpec = dist.StepSpec{Kind: dist.StepDecreasing, Beta: p.Beta, M: n, C: o.C}
			sens = dp.SensitivityShardedConvexDecreasing(p.L, p.Beta, o.Passes, n, o.Batch, o.C, workers)
		case StepSqrt:
			stepSpec = dist.StepSpec{Kind: dist.StepSqrt, Beta: p.Beta, M: n, C: o.C}
			sens = dp.SensitivityShardedConvexSqrt(p.L, p.Beta, o.Passes, n, o.Batch, o.C, workers)
		default:
			return nil, fmt.Errorf("core: unknown StepKind %v", o.Step)
		}
	}

	lossSpec, err := dist.LossSpecFor(f)
	if err != nil {
		return nil, err
	}
	job := dist.Job{
		ID: fmt.Sprintf("train-%s-%d", f.Name(), jobSeq.Add(1)),
		Spec: dist.TrainSpec{
			Loss: lossSpec, Step: stepSpec,
			Batch: o.Batch, Radius: o.Radius, Average: o.Average,
			KernelWorkers: o.KernelWorkers,
		},
		Shards: maxInt(o.Workers, 1),
		Passes: o.Passes,
	}

	if err := o.reserveBudget(f); err != nil {
		return nil, err
	}
	runCtx := o.Ctx
	if runCtx == nil {
		runCtx = context.Background()
	}
	res, err := coord.Train(runCtx, src, job, o.Rand)
	if err != nil {
		return nil, err
	}
	return perturb(&sgd.Result{
		W: res.W, WAvg: res.WAvg, Updates: res.Updates, Passes: res.Passes,
	}, o, sens)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
