package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// TestSimpleRuleParityWall: attaching an accountant — under any rule —
// must never change the trained model. The output-perturbation path
// with a simple-rule accountant is the exact pre-refactor configuration
// (typed reservations downgrade to the plain entries Reserve always
// recorded), so rule-less == simple == rdp bit-identity pins that the
// accounting subsystem stayed out of the training arithmetic.
func TestSimpleRuleParityWall(t *testing.T) {
	s := separable(rand.New(rand.NewSource(21)), 600, 6)
	f := loss.NewLogistic(1e-2, 0)
	total := dp.Budget{Epsilon: 2, Delta: 1e-5}
	budget := dp.Budget{Epsilon: 1, Delta: 1e-6}

	run := func(acct *account.Accountant) *Result {
		res, err := Train(s, f, Options{
			Budget:     budget,
			Passes:     2,
			Batch:      25,
			Radius:     100,
			Rand:       rand.New(rand.NewSource(77)),
			Accountant: acct,
			SpendLabel: "wall",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(nil)
	for _, rule := range compose.Rules() {
		acct, err := account.NewWithRule(rule, total)
		if err != nil {
			t.Fatal(err)
		}
		got := run(acct)
		for i := range base.W {
			if base.W[i] != got.W[i] {
				t.Fatalf("rule %s: w[%d] = %v, rule-less run has %v", rule, i, got.W[i], base.W[i])
			}
		}
	}

	// And the simple-rule ledger is Same as one written by the plain
	// pre-refactor Reserve call — the typed Gaussian reservation
	// downgraded to an identical entry.
	typed, _ := account.NewWithRule(compose.RuleSimple, total)
	run(typed)
	plain := account.MustNew(total)
	if err := plain.Reserve("wall", budget); err != nil {
		t.Fatal(err)
	}
	if !typed.Ledger().Same(plain.Ledger()) {
		t.Fatalf("simple-rule training ledger diverged from plain Reserve:\n%+v\nvs\n%+v",
			typed.Ledger(), plain.Ledger())
	}

	// A pure budget takes the ReservePure path; same bit-compat.
	pureTyped, _ := account.NewWithRule(compose.RuleSimple, dp.Budget{Epsilon: 2})
	res, err := Train(s, f, Options{
		Budget: dp.Budget{Epsilon: 1}, Passes: 1, Batch: 25, Radius: 100,
		Rand: rand.New(rand.NewSource(78)), Accountant: pureTyped, SpendLabel: "pure",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.W) == 0 {
		t.Fatal("pure-budget run produced no model")
	}
	purePlain := account.MustNew(dp.Budget{Epsilon: 2})
	if err := purePlain.Reserve("pure", dp.Budget{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if !pureTyped.Ledger().Same(purePlain.Ledger()) {
		t.Fatal("pure-budget ledger diverged from plain Reserve")
	}
}

// TestGradPerturbEndToEnd: the gradient-perturbation strategy trains a
// usable model under an rdp accountant, records an sgm ledger entry,
// and reports the right result shape (no non-private model to leak).
func TestGradPerturbEndToEnd(t *testing.T) {
	s := separable(rand.New(rand.NewSource(31)), 1000, 5)
	f := loss.NewLogistic(1e-2, 0)
	acct, err := account.NewWithRule(compose.RuleRDP, dp.Budget{Epsilon: 4, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainCtx(context.Background(), s, f,
		WithBudget(dp.Budget{Epsilon: 2, Delta: 1e-6}),
		WithAccountant(acct),
		WithGradPerturb(1, 0), // solve σ̃ from the budget
		WithPasses(2), WithBatch(50), WithRadius(100),
		WithRand(rand.New(rand.NewSource(32))))
	if err != nil {
		t.Fatal(err)
	}
	if res.NonPrivate != nil {
		t.Error("gradperturb leaked a NonPrivate model; every iterate is already private")
	}
	if res.Sensitivity != 2 {
		t.Errorf("Sensitivity = %v, want 2·Clip = 2", res.Sensitivity)
	}
	if res.Updates != 2*(1000/50) {
		t.Errorf("Updates = %d, want %d", res.Updates, 2*(1000/50))
	}
	risk0 := sgd.EmpiricalRisk(s, f, make([]float64, 5))
	if risk := sgd.EmpiricalRisk(s, f, res.W); risk >= risk0 {
		t.Errorf("gradperturb model risk %v not better than zero model %v", risk, risk0)
	}

	l := acct.Ledger()
	if l.Rule != compose.RuleRDP {
		t.Fatalf("ledger rule = %q", l.Rule)
	}
	if len(l.Entries) != 1 {
		t.Fatalf("ledger entries: %+v", l.Entries)
	}
	e := l.Entries[0]
	if compose.Kind(e.Kind) != compose.KindSGM || e.Sigma <= 0 || e.Q != 50.0/1000 || e.Steps != 40 {
		t.Fatalf("sgm entry detail wrong: %+v", e)
	}
	if e.Label != "gradperturb("+f.Name()+")" {
		t.Errorf("label = %q", e.Label)
	}
	// Under rdp the composed spend is far below the entry's standalone
	// linear price — the point of the strategy.
	if sp := acct.Spent(); sp.Epsilon > e.Epsilon {
		t.Errorf("composed spend %v exceeds linear entry price %v", sp.Epsilon, e.Epsilon)
	}
	// The rdp ledger round-trips through model metadata.
	meta := map[string]string{}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	back, ok, err := account.LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("LedgerFromMeta: ok=%v err=%v", ok, err)
	}
	if !l.Same(back) {
		t.Fatal("rdp ledger did not round-trip through metadata")
	}
}

// TestGradPerturbDeterministic: fixed seeds give a bit-identical model.
func TestGradPerturbDeterministic(t *testing.T) {
	s := separable(rand.New(rand.NewSource(41)), 400, 4)
	f := loss.NewLogistic(1e-2, 0)
	run := func() []float64 {
		res, err := Train(s, f, Options{
			Budget:      dp.Budget{Epsilon: 4, Delta: 1e-6},
			GradPerturb: &GradPerturbSpec{Clip: 0.5, NoiseMultiplier: 1},
			Passes:      2, Batch: 20, Radius: 100,
			Rand: rand.New(rand.NewSource(42)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("w[%d]: %v vs %v across identical runs", i, a[i], b[i])
		}
	}
}

// TestGradPerturbOverdrawBeforeWork: an over-budget gradperturb run
// fails closed with account.ErrOverdraw and ZERO row accesses — the
// reservation happens before the engine sees the data.
func TestGradPerturbOverdrawBeforeWork(t *testing.T) {
	base := separable(rand.New(rand.NewSource(51)), 500, 4)
	src := &cancelAfterSamples{s: base, n: -1, cancel: func() {}}
	acct, err := account.NewWithRule(compose.RuleRDP, dp.Budget{Epsilon: 0.5, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Train(src, loss.NewLogistic(1e-2, 0), Options{
		Budget: dp.Budget{Epsilon: 0.5, Delta: 1e-7},
		// σ̃ = 0.05 over 25 steps prices enormously above ε = 0.5.
		GradPerturb: &GradPerturbSpec{Clip: 1, NoiseMultiplier: 0.05},
		Passes:      1, Batch: 20, Radius: 100,
		Rand:       rand.New(rand.NewSource(52)),
		Accountant: acct,
	})
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("err = %v, want account.ErrOverdraw", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("over-budget gradperturb run still read %d rows", got)
	}
	if len(acct.Ledger().Entries) != 0 {
		t.Error("refused reservation left a ledger entry")
	}

	// Stand-alone (no accountant) the same overpriced run is refused by
	// the trial pricing, still before any row access.
	_, err = Train(src, loss.NewLogistic(1e-2, 0), Options{
		Budget:      dp.Budget{Epsilon: 0.5, Delta: 1e-6},
		GradPerturb: &GradPerturbSpec{Clip: 1, NoiseMultiplier: 0.05},
		Passes:      1, Batch: 20, Radius: 100,
		Rand: rand.New(rand.NewSource(53)),
	})
	if err == nil || !strings.Contains(err.Error(), "over budget") {
		t.Fatalf("stand-alone overpriced run: err = %v", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("stand-alone over-budget run still read %d rows", got)
	}
}

// TestGradPerturbRuleDefaultsAndMismatch: the strategy defaults to rdp
// accounting — a budget that cannot fit T steps under simple accounting
// trains fine under the default — and a stated Accounting rule must
// agree with the accountant's.
func TestGradPerturbRuleDefaultsAndMismatch(t *testing.T) {
	s := separable(rand.New(rand.NewSource(61)), 800, 4)
	f := loss.NewLogistic(1e-2, 0)
	budget := dp.Budget{Epsilon: 2.5, Delta: 1e-6}
	opt := func() Options {
		return Options{
			Budget:      budget,
			GradPerturb: &GradPerturbSpec{Clip: 1, NoiseMultiplier: 1.2},
			Passes:      2, Batch: 25, Radius: 100,
			Rand: rand.New(rand.NewSource(62)),
		}
	}

	// 64 steps at σ̃ = 1.2 price over ε = 2.5 under simple composition...
	o := opt()
	o.Accounting = compose.RuleSimple
	if _, err := Train(s, f, o); err == nil || !strings.Contains(err.Error(), "over budget") {
		t.Fatalf("simple-rule pricing should refuse this run, got err = %v", err)
	}
	// ...and comfortably fit under the rdp default.
	if _, err := Train(s, f, opt()); err != nil {
		t.Fatalf("rdp-default run failed: %v", err)
	}

	// Rule mismatch with the accountant is a configuration error.
	acct, _ := account.NewWithRule(compose.RuleAdvanced, dp.Budget{Epsilon: 4, Delta: 1e-5})
	o = opt()
	o.Accountant = acct
	o.Accounting = compose.RuleRDP
	if _, err := Train(s, f, o); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("rule mismatch: err = %v", err)
	}
	// An unknown rule is rejected too.
	o = opt()
	o.Accounting = "zcdp"
	if _, err := Train(s, f, o); err == nil {
		t.Fatal("unknown accounting rule accepted")
	}
}

// TestGradPerturbValidationCore: Sequential-only, no Tol, δ > 0, and a
// usable noise multiplier.
func TestGradPerturbValidationCore(t *testing.T) {
	s := separable(rand.New(rand.NewSource(71)), 200, 4)
	f := loss.NewLogistic(1e-2, 0)
	base := func() Options {
		return Options{
			Budget:      dp.Budget{Epsilon: 6, Delta: 1e-6},
			GradPerturb: &GradPerturbSpec{Clip: 1, NoiseMultiplier: 1},
			Passes:      1, Batch: 20, Radius: 100,
			Rand: rand.New(rand.NewSource(72)),
		}
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"sharded", func(o *Options) { o.Strategy = 1; o.Workers = 2 }, "Sequential-only"},
		{"tol", func(o *Options) { o.Tol = 1e-3 }, "Tol"},
		{"progress", func(o *Options) { o.Progress = func(int, float64) {} }, "Progress"},
		{"freshperm", func(o *Options) { o.FreshPerm = true }, "FreshPerm"},
		{"pure budget", func(o *Options) { o.Budget = dp.Budget{Epsilon: 2} }, "δ > 0"},
		{"negative multiplier", func(o *Options) { o.GradPerturb.NoiseMultiplier = -1 }, "NoiseMultiplier"},
	}
	for _, tc := range cases {
		o := base()
		tc.mut(&o)
		_, err := Train(s, f, o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// The happy path actually runs (guards the cases above are real).
	if _, err := Train(s, f, base()); err != nil {
		t.Fatalf("base gradperturb config failed: %v", err)
	}
}

// TestGradPerturbSolvedSigmaTightens: a larger budget admits less noise
// (smaller solved σ̃), observable through the ledger's recorded σ̃.
func TestGradPerturbSolvedSigmaTightens(t *testing.T) {
	s := separable(rand.New(rand.NewSource(81)), 500, 4)
	f := loss.NewLogistic(1e-2, 0)
	sigmaFor := func(eps float64) float64 {
		acct, err := account.NewWithRule(compose.RuleRDP, dp.Budget{Epsilon: eps, Delta: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Train(s, f, Options{
			Budget:      dp.Budget{Epsilon: eps, Delta: 1e-6},
			GradPerturb: &GradPerturbSpec{Clip: 1},
			Passes:      1, Batch: 25, Radius: 100,
			Rand:       rand.New(rand.NewSource(82)),
			Accountant: acct,
		})
		if err != nil {
			t.Fatal(err)
		}
		return acct.Ledger().Entries[0].Sigma
	}
	loose, tight := sigmaFor(4), sigmaFor(0.5)
	if !(loose < tight) {
		t.Fatalf("σ̃(ε=4) = %v should be below σ̃(ε=0.5) = %v", loose, tight)
	}
	got := vec.Norm([]float64{loose, tight})
	if got <= 0 {
		t.Fatal("degenerate solved multipliers")
	}
}
