package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// windowPrefix is the ledger-label prefix every continual window spend
// carries; NewContinualTrainer scans for it to resume a half-finished
// window sequence from a restored accountant.
const windowPrefix = "window["

// ContinualTrainer runs warm-start continual training under a fixed
// total privacy budget: the accountant's remainder is divided into N
// equal windows up front (the Accountant.Split discipline, applied
// lazily so unspent windows stay in the accountant), and every Retrain
// spends exactly one window, warm-starting from the previous window's
// released model. The ledger records each window as
// "window[i/N]" — the total spend across all windows can never exceed
// the accountant's total, the (N+1)-th retrain fails closed with
// account.ErrOverdraw before reading a single row, and the final
// model's metadata (Accountant().StampMeta) audits every window.
//
// Warm-starting is privacy-free: each window's noise is calibrated to
// the full sensitivity of its own run, and the start point is a
// previously RELEASED private model, which is data-independent by
// post-processing. The trade is statistical, not privacy: a warm start
// from a good model converges in fewer effective passes, while a
// scratch run with the same seed produces a different (not worse, not
// comparable bit-for-bit) iterate — see the divergence contract pinned
// in the tests.
//
// A ContinualTrainer is safe for concurrent use; Retrain serializes.
type ContinualTrainer struct {
	mu      sync.Mutex
	acct    *account.Accountant
	f       loss.Function
	base    []Option
	windows int
	window  dp.Budget
	next    int // windows already spent
	w       []float64
}

// NewContinualTrainer builds a continual trainer drawing windows equal
// shares of acct's CURRENT remainder — typically the whole total, or
// what is left after an initial full training spend. base options are
// applied to every window's run (budget, accountant, spend label and
// warm start are managed by the trainer and always win).
//
// When acct already carries "window[i/N]" entries — an accountant
// restored with account.Restore from a published model's ledger — the
// trainer resumes: the per-window budget is read from the first such
// entry and the spent-window count from how many there are, so a
// process restart continues the sequence instead of re-splitting the
// (smaller) remainder.
func NewContinualTrainer(acct *account.Accountant, windows int, f loss.Function, base ...Option) (*ContinualTrainer, error) {
	if acct == nil {
		return nil, fmt.Errorf("core: ContinualTrainer needs an accountant")
	}
	if windows < 1 {
		return nil, fmt.Errorf("core: ContinualTrainer over %d windows", windows)
	}
	if f == nil {
		return nil, fmt.Errorf("core: ContinualTrainer needs a loss")
	}
	t := &ContinualTrainer{acct: acct, f: f, base: base, windows: windows}

	spent := 0
	for _, e := range acct.Ledger().Entries {
		if strings.HasPrefix(e.Label, windowPrefix) {
			if spent == 0 {
				t.window = e.Budget()
			}
			spent++
		}
	}
	if spent > 0 {
		if spent > windows {
			return nil, fmt.Errorf("core: ledger records %d window spends, trainer configured for %d", spent, windows)
		}
		t.next = spent
		return t, nil
	}

	rem := acct.Remaining()
	if rem.Epsilon <= 0 {
		return nil, fmt.Errorf("%w: splitting the remainder of an exhausted accountant (total %v)",
			account.ErrOverdraw, acct.Total())
	}
	t.window = rem.Split(windows)
	return t, nil
}

// ContinualWindowsSpent counts the "window[i/N]" entries in a ledger —
// how many continual windows the recorded history has already spent.
// Zero for a ledger that never ran continual training (e.g. the
// initial full-training spend only).
func ContinualWindowsSpent(l *account.Ledger) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.Entries {
		if strings.HasPrefix(e.Label, windowPrefix) {
			n++
		}
	}
	return n
}

// NewContinualRDP is the default-configuration constructor the issue's
// online tier uses: a fresh rdp-rule accountant over total, split into
// windows. The rdp rule prices the window sequence tighter than simple
// composition, so the same total buys more usable noise per window.
func NewContinualRDP(total dp.Budget, windows int, f loss.Function, base ...Option) (*ContinualTrainer, error) {
	acct, err := account.NewWithRule("rdp", total)
	if err != nil {
		return nil, err
	}
	return NewContinualTrainer(acct, windows, f, base...)
}

// Retrain spends the next window: one TrainCtx run over s at the
// per-window budget, warm-started from the trainer's current weights
// (the previous window's released model, or the seed set with
// SetWarmStart; nil means the origin). extra options are applied after
// the base ones; budget, accountant, spend label and warm start always
// win so a window can never over- or under-spend.
//
// When every window is already spent, Retrain fails closed with an
// error wrapping account.ErrOverdraw before touching a single row of s.
func (t *ContinualTrainer) Retrain(ctx context.Context, s sgd.Samples, extra ...Option) (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next >= t.windows {
		return nil, fmt.Errorf("%w: all %d continual windows spent (total %v)",
			account.ErrOverdraw, t.windows, t.acct.Total())
	}
	label := fmt.Sprintf("%s%d/%d]", windowPrefix, t.next+1, t.windows)
	opts := make([]Option, 0, len(t.base)+len(extra)+4)
	opts = append(opts, t.base...)
	opts = append(opts, extra...)
	opts = append(opts,
		WithBudget(t.window),
		WithAccountant(t.acct),
		WithSpendLabel(label),
		WithWarmStart(t.w),
	)
	res, err := TrainCtx(ctx, s, t.f, opts...)
	if err != nil {
		return nil, err
	}
	t.w = append([]float64(nil), res.W...)
	t.next++
	return res, nil
}

// Window returns how many windows have been spent.
func (t *ContinualTrainer) Window() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Windows returns the configured window count N.
func (t *ContinualTrainer) Windows() int { return t.windows }

// WindowBudget returns the per-window budget.
func (t *ContinualTrainer) WindowBudget() dp.Budget { return t.window }

// Weights returns a copy of the current warm-start point (the last
// released window model), or nil before the first window.
func (t *ContinualTrainer) Weights() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return nil
	}
	return append([]float64(nil), t.w...)
}

// SetWarmStart seeds the next window's start point — used when resuming
// a trainer from a published model (the weights come from the registry,
// the spend history from account.Restore). Pass only released private
// models: the warm start must be data-independent.
func (t *ContinualTrainer) SetWarmStart(w []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(w) == 0 {
		t.w = nil
		return
	}
	t.w = append([]float64(nil), w...)
}

// Accountant returns the trainer's accountant (for StampMeta and
// auditing).
func (t *ContinualTrainer) Accountant() *account.Accountant { return t.acct }

// Ledger snapshots the trainer's spend history.
func (t *ContinualTrainer) Ledger() *account.Ledger { return t.acct.Ledger() }
