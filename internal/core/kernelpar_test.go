package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/baselines"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// TestKernelWorkersParityWall is the cross-layer parity wall for the
// deterministic parallel kernel: KernelWorkers ∈ {1, 2, 4} must leave
// every training output BIT-identical — not tolerance-close — across
// {dense, sparse} sources × all three engine strategies × {noiseless
// baseline, private TrainCtx}. The private leg additionally pins the
// noise draw and sensitivity, proving parallelism never touches the
// randomness schedule or the privacy calculus.
func TestKernelWorkersParityWall(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sp := data.SparseSynthetic(r, 360, 50, 6, 0.02)
	de := sp.ToDense()
	f := loss.NewLogistic(1e-2, 0)

	bitsEq := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}

	strategies := []struct {
		name     string
		strategy engine.Strategy
		workers  int
		passes   int
	}{
		{"sequential", engine.Sequential, 1, 3},
		{"sharded-3", engine.Sharded, 3, 3},
		{"streaming", engine.Streaming, 1, 1},
	}
	sources := []struct {
		name string
		s    sgd.Samples
	}{{"dense", de}, {"sparse", sp}}

	for _, src := range sources {
		for _, sc := range strategies {
			t.Run(fmt.Sprintf("private/%s/%s", src.name, sc.name), func(t *testing.T) {
				run := func(kw int) *Result {
					res, err := TrainCtx(context.Background(), src.s, f,
						WithBudget(dp.Budget{Epsilon: 0.5}),
						WithPasses(sc.passes), WithBatch(10), WithRadius(100),
						WithStrategy(sc.strategy, sc.workers),
						WithKernelWorkers(kw),
						WithRand(rand.New(rand.NewSource(99))))
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				base := run(1)
				for _, kw := range []int{2, 4} {
					res := run(kw)
					if res.Sensitivity != base.Sensitivity || res.NoiseNorm != base.NoiseNorm {
						t.Errorf("W=%d: privacy calculus moved: Δ₂ %v→%v ‖κ‖ %v→%v", kw,
							base.Sensitivity, res.Sensitivity, base.NoiseNorm, res.NoiseNorm)
					}
					if res.Updates != base.Updates || res.Passes != base.Passes {
						t.Errorf("W=%d: bookkeeping %d/%d, want %d/%d", kw,
							res.Updates, res.Passes, base.Updates, base.Passes)
					}
					if !bitsEq(res.W, base.W) {
						t.Errorf("W=%d: private model not bit-identical", kw)
					}
					if !bitsEq(res.NonPrivate, base.NonPrivate) {
						t.Errorf("W=%d: pre-noise model not bit-identical", kw)
					}
				}
			})
			t.Run(fmt.Sprintf("noiseless/%s/%s", src.name, sc.name), func(t *testing.T) {
				run := func(kw int) *baselines.Result {
					res, err := baselines.Noiseless(src.s, f, baselines.Options{
						Passes: sc.passes, Batch: 10, Radius: 100,
						Strategy: sc.strategy, Workers: sc.workers,
						KernelWorkers: kw,
						Rand:          rand.New(rand.NewSource(7)),
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				base := run(1)
				for _, kw := range []int{2, 4} {
					res := run(kw)
					if res.Updates != base.Updates {
						t.Errorf("W=%d: updates %d, want %d", kw, res.Updates, base.Updates)
					}
					if !bitsEq(res.W, base.W) {
						t.Errorf("W=%d: noiseless model not bit-identical", kw)
					}
				}
			})
		}
	}
}

func TestKernelWorkersOptionValidation(t *testing.T) {
	ds := strategyDataset(8, 100, 3)
	f := loss.NewLogistic(1e-2, 0)
	if _, err := Train(ds, f, Options{
		Budget: dp.Budget{Epsilon: 1}, KernelWorkers: -2,
		Rand: rand.New(rand.NewSource(9)),
	}); err == nil {
		t.Error("negative KernelWorkers accepted")
	}
}
