package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"boltondp/internal/account"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// cancelAfterSamples wraps a Samples source and cancels a context the
// n-th time a row is accessed — a deterministic mid-run cancellation
// trigger. The counter is atomic so sharded (concurrent) runs can use
// it too.
type cancelAfterSamples struct {
	s      sgd.Samples
	n      int64
	count  atomic.Int64
	cancel context.CancelFunc
}

func (c *cancelAfterSamples) Len() int { return c.s.Len() }
func (c *cancelAfterSamples) Dim() int { return c.s.Dim() }
func (c *cancelAfterSamples) At(i int) ([]float64, float64) {
	if c.count.Add(1) == c.n {
		c.cancel()
	}
	return c.s.At(i)
}

// A mid-run cancellation must stop Train within one epoch slice,
// returning ctx.Err() — pinned for all three execution strategies (the
// third acceptance criterion of the context plumbing).
func TestTrainCtxCancelMidRunPerStrategy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ds, _ := data.ProteinSim(r, 0.05) // m ≈ 3.6k
	m := int64(ds.Len())
	f := loss.NewLogistic(1e-2, 0)

	for _, tc := range []struct {
		name     string
		strategy engine.Strategy
		workers  int
		passes   int
	}{
		{"sequential", engine.Sequential, 1, 50},
		{"sharded", engine.Sharded, 4, 50},
		{"streaming", engine.Streaming, 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Cancel partway through the second epoch (first and only
			// pass for streaming).
			src := &cancelAfterSamples{s: ds, n: m + m/2, cancel: cancel}
			if tc.strategy == engine.Streaming {
				src.n = m / 2
			}
			_, err := TrainCtx(ctx, src, f,
				WithBudget(dp.Budget{Epsilon: 1}),
				WithPasses(tc.passes), WithBatch(10), WithRadius(100),
				WithStrategy(tc.strategy, tc.workers),
				WithRand(rand.New(rand.NewSource(1))))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// "Within one epoch slice": the run must not have plowed
			// through anywhere near all passes·m row accesses after the
			// cancel. Two epochs of slack absorbs the in-flight epoch
			// (sharded workers finish their current pass) plus Tol/
			// progress-style full-set evaluations.
			if got := src.count.Load(); got > src.n+2*m {
				t.Errorf("run continued after cancel: %d row accesses (cancel at %d, m=%d)", got, src.n, m)
			}
		})
	}
}

// An already-expired deadline stops the run before any row is read.
func TestTrainCtxDeadlineBeforeWork(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ds, _ := data.ProteinSim(r, 0.02)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	src := &cancelAfterSamples{s: ds, n: -1, cancel: func() {}}
	_, err := TrainCtx(ctx, src, loss.NewLogistic(1e-2, 0),
		WithBudget(dp.Budget{Epsilon: 1}),
		WithPasses(3), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(1))))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("expired context still read %d rows", got)
	}
}

// An over-budget accountant draw must fail closed BEFORE any training
// work: the error arrives with zero row accesses (the second
// acceptance criterion).
func TestTrainAccountantOverdrawBeforeWork(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ds, _ := data.ProteinSim(r, 0.02)
	src := &cancelAfterSamples{s: ds, n: -1, cancel: func() {}}

	acct := account.MustNew(dp.Budget{Epsilon: 1})
	if err := acct.Reserve("earlier run", dp.Budget{Epsilon: 0.8}); err != nil {
		t.Fatal(err)
	}
	_, err := TrainCtx(context.Background(), src, loss.NewLogistic(1e-2, 0),
		WithBudget(dp.Budget{Epsilon: 0.5}), // only 0.2 remains
		WithAccountant(acct),
		WithPasses(3), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(1))))
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("err = %v, want account.ErrOverdraw", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("over-budget run still read %d rows", got)
	}
	// The convex algorithm fails closed the same way.
	_, err = PrivateConvexPSGDCtx(context.Background(), src, loss.NewLogistic(0, 0),
		WithBudget(dp.Budget{Epsilon: 0.5}), WithAccountant(acct),
		WithPasses(2), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(1))))
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("convex err = %v, want account.ErrOverdraw", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("over-budget convex run still read %d rows", got)
	}

	// Drawing the remainder (no WithBudget) from an EXHAUSTED
	// accountant reports the same error identity, not a zero-ε
	// validation error.
	drained := account.MustNew(dp.Budget{Epsilon: 1})
	if err := drained.Reserve("all", dp.Budget{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = TrainCtx(context.Background(), src, loss.NewLogistic(1e-2, 0),
		WithAccountant(drained),
		WithPasses(1), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(1))))
	if !errors.Is(err, account.ErrOverdraw) {
		t.Fatalf("exhausted-remainder err = %v, want account.ErrOverdraw", err)
	}
	if got := src.count.Load(); got != 0 {
		t.Errorf("exhausted-accountant run still read %d rows", got)
	}
}

// A granted draw debits the accountant, records a ledger entry, and
// still trains correctly; WithAccountant alone draws the remainder.
func TestTrainAccountantDrawsAndLedgers(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ds, _ := data.ProteinSim(r, 0.02)
	f := loss.NewLogistic(1e-2, 0)
	acct := account.MustNew(dp.Budget{Epsilon: 2})

	res, err := TrainCtx(context.Background(), ds, f,
		WithBudget(dp.Budget{Epsilon: 0.5}), WithAccountant(acct),
		WithSpendLabel("half"),
		WithPasses(2), WithBatch(10), WithRadius(100), WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != ds.Dim() {
		t.Fatalf("model dim %d", len(res.W))
	}
	if got := acct.Spent(); got.Epsilon != 0.5 {
		t.Errorf("Spent = %v", got)
	}

	// Budget-less draw takes everything that remains (ε = 1.5).
	res, err = TrainCtx(context.Background(), ds, f,
		WithAccountant(acct),
		WithPasses(2), WithBatch(10), WithRadius(100), WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != ds.Dim() {
		t.Fatalf("model dim %d", len(res.W))
	}
	if rem := acct.Remaining(); rem.Epsilon != 0 {
		t.Errorf("Remaining = %v", rem)
	}
	l := acct.Ledger()
	if len(l.Entries) != 2 || l.Entries[0].Label != "half" || l.Entries[1].Label != "train("+f.Name()+")" {
		t.Fatalf("ledger: %+v", l.Entries)
	}
	if l.Entries[1].Epsilon != 1.5 {
		t.Errorf("remainder draw ε = %v, want 1.5", l.Entries[1].Epsilon)
	}
}

// The Progress hook reports one (epoch, risk) pair per pass, risks
// non-increasing-ish over a strongly convex run, and TrainCtx with a
// background context behaves exactly like Train.
func TestTrainCtxProgressHook(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ds, _ := data.ProteinSim(r, 0.02)
	f := loss.NewLogistic(1e-2, 0)
	var epochs []int
	var risks []float64
	_, err := TrainCtx(context.Background(), ds, f,
		WithBudget(dp.Budget{Epsilon: 1}),
		WithPasses(4), WithBatch(10), WithRadius(100),
		WithProgress(func(e int, risk float64) {
			epochs = append(epochs, e)
			risks = append(risks, risk)
		}),
		WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 4 {
		t.Fatalf("progress calls: %v", epochs)
	}
	for i, e := range epochs {
		if e != i+1 {
			t.Errorf("epoch numbering: %v", epochs)
			break
		}
	}
	if risks[len(risks)-1] >= risks[0] {
		t.Errorf("risk did not decrease: %v", risks)
	}
}

// The sharded strategy reports progress on the merged model, once per
// merge epoch.
func TestTrainCtxProgressHookSharded(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ds, _ := data.ProteinSim(r, 0.05)
	calls := 0
	_, err := TrainCtx(context.Background(), ds, loss.NewLogistic(1e-2, 0),
		WithBudget(dp.Budget{Epsilon: 1}),
		WithPasses(3), WithBatch(10), WithRadius(100),
		WithStrategy(engine.Sharded, 4),
		WithProgress(func(e int, risk float64) { calls++ }),
		WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("sharded progress calls = %d, want 3 (one per merge epoch)", calls)
	}
}
