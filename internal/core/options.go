package core

import (
	"context"
	"math/rand"

	"boltondp/internal/account"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
)

// Option is a functional option for TrainCtx and friends. Options are
// applied in order over a zero Options value (or over the base given to
// WithOptions), so later options win.
type Option func(*Options)

// WithOptions seeds the run from a full Options value — the escape
// hatch for parameters without a dedicated option (step family,
// averaging, fresh permutations, …). Place it first: options applied
// after it override its fields.
func WithOptions(base Options) Option {
	return func(o *Options) { *o = base }
}

// WithBudget sets the privacy budget the release is calibrated to.
// Combined with WithAccountant, the budget is reserved against the
// accountant before training; alone, it is the stand-alone guarantee.
func WithBudget(b dp.Budget) Option {
	return func(o *Options) { o.Budget = b }
}

// WithAccountant attaches the privacy-budget accountant the run draws
// from. Without WithBudget the entire remaining budget is drawn; either
// way the spend is recorded in the accountant's ledger and an
// over-budget request fails closed before any training work.
func WithAccountant(a *account.Accountant) Option {
	return func(o *Options) { o.Accountant = a }
}

// WithSpendLabel names this run's entry in the accountant's ledger
// (default "train(<loss name>)").
func WithSpendLabel(label string) Option {
	return func(o *Options) { o.SpendLabel = label }
}

// WithPasses sets k, the number of passes over the data.
func WithPasses(k int) Option {
	return func(o *Options) { o.Passes = k }
}

// WithBatch sets the mini-batch size b.
func WithBatch(b int) Option {
	return func(o *Options) { o.Batch = b }
}

// WithRadius constrains the hypothesis space to the L2 ball of radius
// r (the paper's R = 1/λ convention for strongly convex losses).
func WithRadius(r float64) Option {
	return func(o *Options) { o.Radius = r }
}

// WithStrategy selects the execution-engine strategy and its worker
// count (workers is only meaningful for engine.Sharded; pass 0 or 1
// otherwise).
func WithStrategy(s engine.Strategy, workers int) Option {
	return func(o *Options) { o.Strategy = s; o.Workers = workers }
}

// WithKernelWorkers sets the intra-batch parallelism degree of the SGD
// kernel (0 or 1 = sequential). The parallel kernel is bit-identical
// to the sequential one for every value, so — unlike WithStrategy's
// worker count — it never changes the sensitivity calculus or the
// result; it only changes how many goroutines compute it.
func WithKernelWorkers(w int) Option {
	return func(o *Options) { o.KernelWorkers = w }
}

// WithRand sets the randomness source for permutations, worker seeds
// and the privacy noise. Required: the trainers refuse to run without
// an explicit source, so seeds stay reproducible by construction.
func WithRand(r *rand.Rand) Option {
	return func(o *Options) { o.Rand = r }
}

// WithProgress installs a per-epoch observability hook: fn is invoked
// after every epoch with the 1-based epoch number and the empirical
// risk of the current (pre-noise, NOT private) iterate. The risk values
// must not be released under the run's budget — they are for logging
// and live monitoring on the trusted side only. Incompatible with
// WithGradPerturb, whose iterates leave the trusted side as they are
// produced: an exact risk value would be an unaccounted release.
func WithProgress(fn func(epoch int, risk float64)) Option {
	return func(o *Options) { o.Progress = fn }
}

// WithTol enables the §4.3 "oblivious k" early-stopping rule (strongly
// convex losses only — the convex trainer rejects it).
func WithTol(tol float64) Option {
	return func(o *Options) { o.Tol = tol }
}

// WithAccounting names the composition rule ("simple", "advanced",
// "rdp") the run is priced under. With an accountant attached the two
// must agree; without one it governs the stand-alone calibration (only
// gradient perturbation consults it today).
func WithAccounting(rule string) Option {
	return func(o *Options) { o.Accounting = rule }
}

// WithGradPerturb switches training to the gradient-perturbation
// strategy: per-example gradients clipped to clip, Gaussian noise at
// noise multiplier noiseMultiplier (σ̃, in units of the 2·clip
// sensitivity) added to every summed mini-batch gradient, priced as T
// subsampled-Gaussian releases under the accounting rule (default rdp).
// Pass noiseMultiplier = 0 to solve the smallest σ̃ that fits the
// budget.
func WithGradPerturb(clip, noiseMultiplier float64) Option {
	return func(o *Options) {
		o.GradPerturb = &GradPerturbSpec{Clip: clip, NoiseMultiplier: noiseMultiplier}
	}
}

// WithConvexity pins Train/TrainCtx dispatch to one of the paper's two
// algorithms. The default (ConvexityAuto) derives the algorithm from
// the loss: Algorithm 2 when it is strongly convex, Algorithm 1
// otherwise. Forcing ConvexityConvex on a strongly convex loss is legal
// (at strictly more noise); forcing ConvexityStronglyConvex on a merely
// convex loss fails. Ignored by gradient perturbation.
func WithConvexity(c Convexity) Option {
	return func(o *Options) { o.Convexity = c }
}

// WithWarmStart starts the SGD iterate at w0 (copied) instead of the
// origin. The sensitivity bounds hold for any data-independent common
// start, and a previously released private model is data-independent by
// post-processing — pass only such vectors, never an unreleased
// iterate. A nil or empty w0 means the origin.
func WithWarmStart(w0 []float64) Option {
	return func(o *Options) {
		if len(w0) == 0 {
			o.W0 = nil
			return
		}
		o.W0 = append([]float64(nil), w0...)
	}
}

// TrainCtx is the training entry point: it runs the bolt-on private
// PSGD appropriate for the loss (or the one forced with WithConvexity,
// or gradient perturbation with WithGradPerturb), cancellable through
// ctx (checked once per mini-batch update by every execution strategy;
// the run returns ctx.Err() within one epoch slice of cancellation or
// deadline expiry).
//
//	acct, _ := account.New(dp.Budget{Epsilon: 1})
//	res, err := core.TrainCtx(ctx, train, f,
//		core.WithAccountant(acct),
//		core.WithPasses(10), core.WithBatch(50), core.WithRadius(1/lambda),
//		core.WithRand(r))
//
// This is the one documented way in; Train, PrivateConvexPSGD and
// PrivateStronglyConvexPSGD are deprecated wrappers that remain
// bit-identical to the equivalent TrainCtx call.
func TrainCtx(ctx context.Context, s sgd.Samples, f loss.Function, opts ...Option) (*Result, error) {
	return train(s, f, buildOptions(ctx, opts))
}

// PrivateConvexPSGDCtx is the context-aware form of PrivateConvexPSGD.
//
// Deprecated: call TrainCtx with WithConvexity(ConvexityConvex).
func PrivateConvexPSGDCtx(ctx context.Context, s sgd.Samples, f loss.Function, opts ...Option) (*Result, error) {
	return privateConvexPSGD(s, f, buildOptions(ctx, opts))
}

// PrivateStronglyConvexPSGDCtx is the context-aware form of
// PrivateStronglyConvexPSGD.
//
// Deprecated: call TrainCtx with WithConvexity(ConvexityStronglyConvex).
func PrivateStronglyConvexPSGDCtx(ctx context.Context, s sgd.Samples, f loss.Function, opts ...Option) (*Result, error) {
	return privateStronglyConvexPSGD(s, f, buildOptions(ctx, opts))
}

func buildOptions(ctx context.Context, opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	o.Ctx = ctx
	return o
}
