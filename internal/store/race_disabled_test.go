//go:build !race

package store_test

const raceEnabled = false
