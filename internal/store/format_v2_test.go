package store_test

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// sameRows asserts src and rd serve bit-identical rows and labels.
func sameRows(t *testing.T, tag string, src sgd.SparseSamples, rd *store.Reader) {
	t.Helper()
	if rd.Len() != src.Len() {
		t.Fatalf("%s: Len %d != %d", tag, rd.Len(), src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		want, wy := src.AtSparse(i)
		wantIdx := append([]int(nil), want.Idx...)
		wantVal := append([]float64(nil), want.Val...) // src may reuse scratch
		got, gy := rd.AtSparse(i)
		if math.Float64bits(gy) != math.Float64bits(wy) || len(got.Idx) != len(wantIdx) {
			t.Fatalf("%s row %d: label or nnz mismatch", tag, i)
		}
		for k := range wantIdx {
			if got.Idx[k] != wantIdx[k] || math.Float64bits(got.Val[k]) != math.Float64bits(wantVal[k]) {
				t.Fatalf("%s row %d: coordinate %d differs", tag, i, k)
			}
		}
	}
}

// TestStoreV2RoundTrip pins the version-2 core contract: every row read
// back through the delta+varint decode is bit-identical to the row
// written, across chunk geometries, and the file reports its version.
func TestStoreV2RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ds := data.SparseSynthetic(r, 257, 100, 9, 0.05)
	for _, chunkRows := range []int{1, 16, 64, 257, 1000} {
		rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: chunkRows, Version: 2}))
		if rd.Version() != 2 {
			t.Fatalf("chunkRows=%d: Version = %d, want 2", chunkRows, rd.Version())
		}
		if int(rd.NNZ()) != ds.NNZ() || rd.Dim() != ds.Dim() || rd.Classes() != ds.Classes {
			t.Fatalf("chunkRows=%d: metadata mismatch", chunkRows)
		}
		sameRows(t, "v2", ds, rd)
		if err := rd.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
	}
	// The default remains version 1 — existing files and callers are
	// untouched by the new encoding.
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{}))
	if rd.Version() != 1 {
		t.Fatalf("default Version = %d, want 1", rd.Version())
	}
	if _, err := store.Create(filepath.Join(t.TempDir(), "x.bolt"), store.Options{Version: 3}); err == nil {
		t.Fatal("Version 3 accepted")
	}
}

// TestStoreV2TrainingParity extends the representation-independence
// invariant to the new encoding: training from a v2 store is
// bit-identical to training from the v1 store and from the in-memory
// dataset both were written from, under every execution strategy.
func TestStoreV2TrainingParity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ds, _ := data.KDDSimSparse(r, 0.004)
	dir := t.TempDir()
	v1 := openStore(t, writeStore(t, dir, ds, store.Options{ChunkRows: 256}))
	v2path := filepath.Join(dir, "v2.bolt")
	if err := store.Write(v2path, ds, store.Options{ChunkRows: 256, Version: 2}); err != nil {
		t.Fatal(err)
	}
	v2 := openStore(t, v2path)
	sameRows(t, "v2-vs-mem", ds, v2)

	for _, tc := range []struct {
		name   string
		cfg    engine.Config
		seed   int64
		passes int
	}{
		{"sequential", engine.Config{Strategy: engine.Sequential}, 1, 2},
		{"sharded-4", engine.Config{Strategy: engine.Sharded, Workers: 4}, 3, 2},
		{"streaming", engine.Config{Strategy: engine.Streaming}, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(s sgd.Samples) []float64 {
				cfg := tc.cfg
				cfg.SGD = epochCfg().SGD
				cfg.SGD.Passes = tc.passes
				if tc.cfg.Strategy != engine.Streaming {
					cfg.SGD.Rand = rand.New(rand.NewSource(tc.seed))
				}
				res, err := engine.Run(s, cfg)
				if err != nil {
					t.Fatalf("engine.Run: %v", err)
				}
				return res.W
			}
			mem := run(ds)
			bitsEqual(t, "v1 W", run(v1), mem)
			bitsEqual(t, "v2 W", run(v2), mem)
		})
	}
}

// TestStoreV2Size is the compression acceptance gate: on the KDD sparse
// simulation a version-2 store must be at least 25% smaller than the
// version-1 store of the same rows. (At d=122 the gap is far wider —
// gaps and row lengths fit single varint bytes where v1 spends eight.)
func TestStoreV2Size(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds, _ := data.KDDSimSparse(r, 0.02)
	dir := t.TempDir()
	size := func(version int) int64 {
		path := filepath.Join(dir, "s.bolt")
		if err := store.Write(path, ds, store.Options{Version: version}); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	s1, s2 := size(1), size(2)
	ratio := float64(s2) / float64(s1)
	t.Logf("store size on KDDSimSparse(%d rows): v1 %d B, v2 %d B, v2/v1 = %.3f", ds.Len(), s1, s2, ratio)
	if ratio > 0.75 {
		t.Fatalf("v2 is only %.1f%% smaller than v1, acceptance floor is 25%%", (1-ratio)*100)
	}
}

// v2Fixture writes a tiny v2 store whose chunk-0 geometry the
// fail-closed test can locate: 5 rows of 3 non-zeros in one chunk, so
// the varint section is 5 row lengths + 15 column varints = 20 bytes
// plus 4 pad bytes.
func v2Fixture(t *testing.T) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v2.bolt")
	w, err := store.Create(path, store.Options{ChunkRows: 8, Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		x := &vec.Sparse{Idx: []int{i, i + 7, i + 40}, Val: []float64{1, -2, 3}}
		if err := w.Append(x, float64(1-2*(i%2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestStoreV2FailClosedVarints exercises the varint decoder's own
// corruption handling: mutations that keep the chunk CRC consistent
// (recomputed after the mutation) so only the decode can catch them.
// Each must surface as a Verify error, never a panic or a wrong row.
func TestStoreV2FailClosedVarints(t *testing.T) {
	raw := v2Fixture(t)
	// Chunk 0: header at 48, payload at 64; val+y prefix is
	// 8·(15+5) = 160 bytes, then the 24-byte varint+pad section.
	const payloadOff, varintOff = 64, 64 + 160
	plen := int(binary.LittleEndian.Uint32(raw[56:60]))

	check := func(name string, mutate func(b []byte)) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), raw...)
			mutate(b)
			// Re-seal the payload so the CRC check passes and the decoder
			// is the layer under test.
			binary.LittleEndian.PutUint32(b[60:64], crc32.ChecksumIEEE(b[payloadOff:payloadOff+plen]))
			path := filepath.Join(t.TempDir(), "bad.bolt")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			rd, err := store.Open(path)
			if err != nil {
				return // failed closed at Open
			}
			defer rd.Close()
			if err := rd.Verify(); err == nil {
				t.Fatal("corrupt varint section neither rejected at Open nor by Verify")
			}
		})
	}

	check("overlong-varints", func(b []byte) {
		for o := varintOff; o < payloadOff+plen; o++ {
			b[o] = 0xFF // continuation bits forever: truncated/overflowing varint
		}
	})
	check("zero-varints", func(b []byte) {
		for o := varintOff; o < payloadOff+plen; o++ {
			b[o] = 0 // row lengths sum to 0 ≠ nnz
		}
	})
	check("zero-column-gap", func(b []byte) {
		b[varintOff+5+1] = 0 // row 0's first gap varint
	})
	check("column-out-of-range", func(b []byte) {
		b[varintOff+5] = 0x7F // row 0's absolute column ≥ dim (45)
	})
	check("nonzero-pad", func(b []byte) {
		b[payloadOff+plen-1] = 1
	})
	// A v2 payload under a header claiming version 1 must fail the
	// geometry check (and vice versa there is no matching plen).
	t.Run("version-mismatch", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(b[8:12], 1)
		binary.LittleEndian.PutUint32(b[40:44], crc32.ChecksumIEEE(b[0:40]))
		path := filepath.Join(t.TempDir(), "bad.bolt")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := store.Open(path)
		if err != nil {
			return
		}
		defer rd.Close()
		if err := rd.Verify(); err == nil {
			t.Fatal("v2 payload accepted under a v1 header")
		}
	})
}

// TestStoreV2ScanAllocs extends the arena-reuse gate to the new
// encoding: v2 chunks are varint-decoded on every chunk switch, but a
// steady-state sequential scan still performs zero allocations.
func TestStoreV2ScanAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ds := data.SparseSynthetic(r, 512, 80, 8, 0)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 64, Version: 2}))
	scan := func() {
		for i := 0; i < rd.Len(); i++ {
			rd.AtSparse(i)
		}
	}
	scan()
	if allocs := testing.AllocsPerRun(10, scan); allocs != 0 {
		t.Fatalf("sequential v2 scan allocates %v per pass, want 0", allocs)
	}
}

// TestStoreV2Manifest: chunk refs work identically over a v2 file (the
// distributed tier's integrity handshake is encoding-agnostic).
func TestStoreV2Manifest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ds := data.SparseSynthetic(r, 100, 30, 4, 0)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 32, Version: 2}))
	refs, err := rd.ChunkRefsForRows(0, rd.Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != rd.Chunks() {
		t.Fatalf("got %d refs, want %d", len(refs), rd.Chunks())
	}
	for i, ref := range refs {
		if ref.Index != i || ref.CRC == 0 {
			t.Fatalf("ref %d malformed: %+v", i, ref)
		}
	}
}
