package store

import (
	"encoding/binary"
	"fmt"
)

// ChunkRef identifies one chunk of a store file for cross-process
// manifests: its index, the rows it holds, and the CRC32 recorded in
// its header. A distributed shard manifest (internal/dist) carries the
// refs of every chunk its row range touches, so a worker opening the
// same path can prove — before training a single row — that it is
// looking at byte-identical data, not a stale or rewritten file under
// the same name. The integrity check is fail-closed on both ends: the
// coordinator reads the refs through the reader's validated directory,
// and the worker refuses a shard whose refs do not match its own file.
type ChunkRef struct {
	// Index is the chunk's position in the file.
	Index int `json:"index"`
	// Rows is the number of rows the chunk holds.
	Rows int `json:"rows"`
	// CRC is the CRC32 (IEEE) over the chunk payload, as recorded in
	// the chunk header.
	CRC uint32 `json:"crc"`
}

// Flags returns the header flag bits (FlagLabels01 and future flags) —
// part of a file's manifest identity: two files that differ only in
// flags serve different labels from identical payload bytes.
func (r *Reader) Flags() uint32 { return r.hdr.flags }

// ChunkRef returns the manifest reference of chunk c. Only the 16-byte
// chunk header is read; the payload's checksum is the one the header
// records (payload bytes are verified against it whenever the chunk is
// decoded, so a ref mismatch and a corrupt payload are both errors,
// never silently wrong data).
func (r *Reader) ChunkRef(c int) (ChunkRef, error) {
	if c < 0 || c >= r.chunks {
		return ChunkRef{}, fmt.Errorf("store: chunk %d out of range [0,%d)", c, r.chunks)
	}
	var hbuf [chunkHeaderSize]byte
	if r.mm != nil {
		copy(hbuf[:], r.mm[r.offsets[c]:r.offsets[c]+chunkHeaderSize])
	} else if _, err := r.f.ReadAt(hbuf[:], r.offsets[c]); err != nil {
		return ChunkRef{}, fmt.Errorf("store: %s: chunk %d: %w", r.path, c, err)
	}
	rows := int(binary.LittleEndian.Uint32(hbuf[0:4]))
	nnz := int(binary.LittleEndian.Uint32(hbuf[4:8]))
	plen := int(binary.LittleEndian.Uint32(hbuf[8:12]))
	crc := binary.LittleEndian.Uint32(hbuf[12:16])
	wantRows := r.hdr.chunkRows
	if c == r.chunks-1 {
		wantRows = r.hdr.rows - (r.chunks-1)*r.hdr.chunkRows
	}
	if rows != wantRows {
		return ChunkRef{}, fmt.Errorf("store: %s: chunk %d holds %d rows, want %d", r.path, c, rows, wantRows)
	}
	if !plenConsistent(r.hdr.version, rows, nnz, plen) {
		return ChunkRef{}, fmt.Errorf("store: %s: chunk %d payload length %d inconsistent with %d rows / %d nnz", r.path, c, plen, rows, nnz)
	}
	return ChunkRef{Index: c, Rows: rows, CRC: crc}, nil
}

// ChunkRefsForRows returns the refs of every chunk overlapping the
// global row range [lo, hi) — the chunk set a shard manifest for those
// rows must pin.
func (r *Reader) ChunkRefsForRows(lo, hi int) ([]ChunkRef, error) {
	if lo < 0 || hi < lo || hi > r.hdr.rows {
		return nil, fmt.Errorf("store: row range [%d,%d) out of bounds for %d rows", lo, hi, r.hdr.rows)
	}
	if lo == hi {
		return nil, nil
	}
	first := lo / r.hdr.chunkRows
	last := (hi - 1) / r.hdr.chunkRows
	refs := make([]ChunkRef, 0, last-first+1)
	for c := first; c <= last; c++ {
		ref, err := r.ChunkRef(c)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
	return refs, nil
}
