package store_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// writeStore converts ds to a store file under dir and returns the
// path.
func writeStore(t *testing.T, dir string, ds *data.SparseDataset, opt store.Options) string {
	t.Helper()
	path := filepath.Join(dir, "ds.bolt")
	if err := store.Write(path, ds, opt); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

func openStore(t *testing.T, path string) *store.Reader {
	t.Helper()
	r, err := store.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestRoundTrip pins the core contract: every row read back from a
// store is bit-identical to the row written, across chunk geometries
// that exercise exact-fit, remainder and single-chunk layouts.
func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ds := data.SparseSynthetic(r, 257, 100, 9, 0.05)
	for _, chunkRows := range []int{1, 16, 64, 257, 1000} {
		rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: chunkRows}))
		if rd.Len() != ds.Len() {
			t.Fatalf("chunkRows=%d: Len %d != %d", chunkRows, rd.Len(), ds.Len())
		}
		if rd.Dim() != ds.Dim() {
			t.Fatalf("chunkRows=%d: Dim %d != %d", chunkRows, rd.Dim(), ds.Dim())
		}
		if rd.Classes() != ds.Classes {
			t.Fatalf("chunkRows=%d: Classes %d != %d", chunkRows, rd.Classes(), ds.Classes)
		}
		if int(rd.NNZ()) != ds.NNZ() {
			t.Fatalf("chunkRows=%d: NNZ %d != %d", chunkRows, rd.NNZ(), ds.NNZ())
		}
		if rd.Density() != ds.Density() {
			t.Fatalf("chunkRows=%d: Density %v != %v", chunkRows, rd.Density(), ds.Density())
		}
		wantChunks := (ds.Len() + chunkRows - 1) / chunkRows
		if rd.Chunks() != wantChunks {
			t.Fatalf("chunkRows=%d: Chunks %d != %d", chunkRows, rd.Chunks(), wantChunks)
		}
		for i := 0; i < ds.Len(); i++ {
			want, wy := ds.AtSparse(i)
			got, gy := rd.AtSparse(i)
			if gy != wy {
				t.Fatalf("chunkRows=%d row %d: label %v != %v", chunkRows, i, gy, wy)
			}
			if len(got.Idx) != len(want.Idx) {
				t.Fatalf("chunkRows=%d row %d: nnz %d != %d", chunkRows, i, len(got.Idx), len(want.Idx))
			}
			for k := range want.Idx {
				if got.Idx[k] != want.Idx[k] ||
					math.Float64bits(got.Val[k]) != math.Float64bits(want.Val[k]) {
					t.Fatalf("chunkRows=%d row %d: coordinate %d differs", chunkRows, i, k)
				}
			}
		}
		// Dense tier agrees with the sparse tier.
		for _, i := range []int{0, ds.Len() / 2, ds.Len() - 1} {
			want, wy := ds.At(i)
			wx := make([]float64, len(want))
			copy(wx, want) // ds.At reuses its scratch
			got, gy := rd.At(i)
			if gy != wy {
				t.Fatalf("dense row %d: label %v != %v", i, gy, wy)
			}
			for k := range wx {
				if got[k] != wx[k] {
					t.Fatalf("dense row %d: col %d: %v != %v", i, k, got[k], wx[k])
				}
			}
		}
		if err := rd.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
	}
}

// TestRandomAccessAcrossChunks walks rows in a shuffled order, which
// forces chunk reloads, and checks every row still comes back right.
func TestRandomAccessAcrossChunks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := data.SparseSynthetic(r, 300, 60, 7, 0)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 32}))
	for _, i := range r.Perm(ds.Len()) {
		want, wy := ds.AtSparse(i)
		got, gy := rd.AtSparse(i)
		if gy != wy || len(got.Idx) != len(want.Idx) {
			t.Fatalf("row %d mismatch after random access", i)
		}
		for k := range want.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("row %d: coordinate %d differs", i, k)
			}
		}
	}
}

// TestShardViews checks that Shard hands out independent, correctly
// translated views (including sub-shards), the contract the sharded
// engine's /P sensitivity division rests on.
func TestShardViews(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ds := data.SparseSynthetic(r, 120, 40, 5, 0)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 17}))

	v, ok := rd.Shard(30, 90).(sgd.SparseSamples)
	if !ok {
		t.Fatal("shard view lost the sparse tier")
	}
	if v.Len() != 60 {
		t.Fatalf("shard Len = %d, want 60", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		want, wy := ds.AtSparse(30 + i)
		got, gy := v.AtSparse(i)
		if gy != wy || len(got.Idx) != len(want.Idx) {
			t.Fatalf("shard row %d mismatch", i)
		}
	}
	// Sub-shards translate to parent coordinates and keep both tiers.
	sub, ok := v.(engine.Sharder)
	if !ok {
		t.Fatal("shard view is not shardable in turn")
	}
	sv := sub.Shard(10, 20).(sgd.SparseSamples)
	for i := 0; i < sv.Len(); i++ {
		want, wy := ds.AtSparse(40 + i)
		got, gy := sv.AtSparse(i)
		if gy != wy || len(got.Idx) != len(want.Idx) {
			t.Fatalf("sub-shard row %d mismatch", i)
		}
		for k := range want.Idx {
			if got.Idx[k] != want.Idx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("sub-shard row %d: coordinate %d differs", i, k)
			}
		}
	}

	for _, bad := range [][2]int{{-1, 10}, {5, 4}, {0, rd.Len() + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shard(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			rd.Shard(bad[0], bad[1])
		}()
	}
}

// TestWriterValidation pins the writer's fail-closed behaviors.
func TestWriterValidation(t *testing.T) {
	dir := t.TempDir()

	if _, err := store.Create(filepath.Join(dir, "a.bolt"), store.Options{ChunkRows: -1}); err == nil {
		t.Fatal("negative ChunkRows accepted")
	}

	w, err := store.Create(filepath.Join(dir, "b.bolt"), store.Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.Append(&vec.Sparse{Idx: []int{3, 1}, Val: []float64{1, 2}}, 1); err == nil {
		t.Fatal("out-of-order indices accepted")
	}
	if err := w.Append(&vec.Sparse{Idx: []int{1}, Val: []float64{1, 2}}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Zero rows is an error at Close, like the loaders' "no examples".
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "no examples") {
		t.Fatalf("empty Close err = %v, want no examples", err)
	}
	if err := w.Append(&vec.Sparse{Idx: []int{0}, Val: []float64{1}}, 1); err == nil {
		t.Fatal("Append after Close accepted")
	}
}

// TestLabels01Remap: under Options.RemapLabels01 a store written with
// raw {0,1} labels serves ±1, matching the LIBSVM loaders' convenience
// remap; without the opt-in the same labels round-trip bit-for-bit
// (the Write bit-identity contract).
func TestLabels01Remap(t *testing.T) {
	ys := []float64{0, 1, 1, 0, 1}
	write := func(t *testing.T, path string, opt store.Options) {
		t.Helper()
		w, err := store.Create(path, opt)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for i, y := range ys {
			if err := w.Append(&vec.Sparse{Idx: []int{i}, Val: []float64{1}}, y); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	remapped := filepath.Join(t.TempDir(), "l.bolt")
	write(t, remapped, store.Options{ChunkRows: 2, RemapLabels01: true})
	rd := openStore(t, remapped)
	if rd.Classes() != 2 {
		t.Fatalf("Classes = %d, want 2", rd.Classes())
	}
	for i, y := range ys {
		_, gy := rd.AtSparse(i)
		if want := 2*y - 1; gy != want {
			t.Fatalf("row %d: label %v, want %v", i, gy, want)
		}
	}

	raw := filepath.Join(t.TempDir(), "r.bolt")
	write(t, raw, store.Options{ChunkRows: 2})
	rr := openStore(t, raw)
	for i, y := range ys {
		_, gy := rr.AtSparse(i)
		if gy != y {
			t.Fatalf("row %d: label %v changed without the remap opt-in, want %v", i, gy, y)
		}
	}
}

// TestFailClosed corrupts a valid store byte by byte region and checks
// that every corruption is an error (from Open or Verify), never a
// panic and never silently served data.
func TestFailClosed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ds := data.SparseSynthetic(r, 64, 30, 5, 0)
	dir := t.TempDir()
	good := writeStore(t, dir, ds, store.Options{ChunkRows: 16})
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.bolt")
			if err := os.WriteFile(path, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			rd, err := store.Open(path)
			if err != nil {
				return // failed closed at Open
			}
			defer rd.Close()
			if err := rd.Verify(); err == nil {
				t.Fatal("corruption neither rejected at Open nor by Verify")
			}
		})
	}

	check("bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	check("bad-version", func(b []byte) []byte { b[8] = 99; return b })
	// Every header field is load-bearing (dim bounds index validation,
	// flags select the label remap, classes routes multiclass checks),
	// so single-bit damage to any of them must be caught — the header
	// carries its own CRC.
	check("header-dim-flip", func(b []byte) []byte { b[16] ^= 0x01; return b })
	check("header-rows-flip", func(b []byte) []byte { b[24] ^= 0x01; return b })
	check("header-classes-flip", func(b []byte) []byte { b[32] ^= 0x01; return b })
	check("header-flags-flip", func(b []byte) []byte { b[36] ^= 0x01; return b })
	check("truncated-footer", func(b []byte) []byte { return b[:len(b)-7] })
	check("truncated-half", func(b []byte) []byte { return b[:len(b)/2] })
	check("truncated-to-header", func(b []byte) []byte { return b[:48] })
	check("chunk-payload-flip", func(b []byte) []byte { b[48+16+3] ^= 0x01; return b })
	check("chunk-value-flip", func(b []byte) []byte { b[48+16+200] ^= 0x80; return b })
	check("chunk-header-rows", func(b []byte) []byte { b[48] ^= 0x01; return b })
	check("directory-flip", func(b []byte) []byte { b[len(b)-48-3] ^= 0x01; return b })
	check("footer-rows-flip", func(b []byte) []byte { b[len(b)-48+8] ^= 0x01; return b })
	check("footer-nnz-flip", func(b []byte) []byte { b[len(b)-48+16] ^= 0x01; return b })
	check("empty", func(b []byte) []byte { return nil })
}

// TestStoreScanAllocs gates the arena reuse claim: a steady-state
// sequential sparse scan of a multi-chunk store performs zero
// allocations — chunk decode reuses the cursor's arenas.
func TestStoreScanAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ds := data.SparseSynthetic(r, 512, 80, 8, 0)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 64}))
	scan := func() {
		for i := 0; i < rd.Len(); i++ {
			rd.AtSparse(i)
		}
	}
	scan() // warm the arenas to their high-water capacity
	if allocs := testing.AllocsPerRun(10, scan); allocs != 0 {
		t.Fatalf("sequential scan allocates %v per pass, want 0", allocs)
	}
}
