package store_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/store"
)

// storeBytes builds a small valid store file and returns its raw
// bytes, the base material for the seed corpus.
func storeBytes(f *testing.F, chunkRows int) []byte {
	f.Helper()
	r := rand.New(rand.NewSource(int64(chunkRows)))
	ds := data.SparseSynthetic(r, 37, 20, 4, 0)
	path := filepath.Join(f.TempDir(), "seed.bolt")
	if err := store.Write(path, ds, store.Options{ChunkRows: chunkRows}); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzReadStore feeds arbitrary bytes to the store reader: Open plus a
// full Verify must either succeed or return an error — never panic,
// hang or over-allocate. The seed corpus covers valid files at several
// chunk geometries plus the corruption classes the fail-closed tests
// pin (truncation, payload/directory bit flips, header field damage).
func FuzzReadStore(f *testing.F) {
	valid := storeBytes(f, 8)
	f.Add(valid)
	f.Add(storeBytes(f, 1))
	f.Add(storeBytes(f, 64))

	mutate := func(fn func(b []byte) []byte) {
		f.Add(fn(append([]byte(nil), valid...)))
	}
	mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b })           // magic
	mutate(func(b []byte) []byte { b[8] = 99; return b })              // version
	mutate(func(b []byte) []byte { b[12] = 0; return b })              // chunkRows = 0
	mutate(func(b []byte) []byte { b[16] = 0xFF; return b })           // dim damage
	mutate(func(b []byte) []byte { b[24] ^= 0x01; return b })          // rows damage
	mutate(func(b []byte) []byte { b[36] ^= 0x01; return b })          // flags damage
	mutate(func(b []byte) []byte { b[48] ^= 0x01; return b })          // chunk header rows
	mutate(func(b []byte) []byte { b[52] ^= 0x01; return b })          // chunk header nnz
	mutate(func(b []byte) []byte { b[48+16+8] ^= 0x80; return b })     // payload value
	mutate(func(b []byte) []byte { b[len(b)-48] ^= 0x01; return b })   // footer dirOffset
	mutate(func(b []byte) []byte { b[len(b)-48-1] ^= 0x01; return b }) // directory byte
	mutate(func(b []byte) []byte { return b[:len(b)-1] })              // truncated footer
	mutate(func(b []byte) []byte { return b[:64] })                    // truncated mid-chunk
	mutate(func(b []byte) []byte { return append(b, 0, 0, 0, 0) })     // trailing garbage
	f.Add([]byte{})
	f.Add([]byte("BOLTSTR1"))

	// One scratch file per worker process: os.WriteFile truncates, so
	// each exec sees only its own bytes, without a TempDir per exec.
	var scratch string
	var scratchOnce sync.Once

	f.Fuzz(func(t *testing.T, content []byte) {
		scratchOnce.Do(func() {
			fh, err := os.CreateTemp("", "boltstore-fuzz-*.bolt")
			if err != nil {
				t.Fatal(err)
			}
			scratch = fh.Name()
			fh.Close()
		})
		path := scratch
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Skip()
		}
		r, err := store.Open(path)
		if err != nil {
			return // failed closed
		}
		defer r.Close()
		// A file Open accepts must serve consistent metadata and either
		// verify fully or error — never panic.
		if r.Len() < 1 || r.Dim() < 1 || r.Chunks() < 1 {
			t.Fatalf("Open accepted a store with Len=%d Dim=%d Chunks=%d", r.Len(), r.Dim(), r.Chunks())
		}
		if err := r.Verify(); err != nil {
			return
		}
		// A fully verified store must serve every row without panicking.
		for i := 0; i < r.Len(); i++ {
			x, _ := r.AtSparse(i)
			if got := x.NNZ(); got < 0 {
				t.Fatalf("row %d: negative nnz %d", i, got)
			}
		}
	})
}
