package store_test

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/store"
)

// storeBytes builds a small valid store file and returns its raw
// bytes, the base material for the seed corpus.
func storeBytes(f *testing.F, opt store.Options) []byte {
	f.Helper()
	r := rand.New(rand.NewSource(int64(opt.ChunkRows)))
	ds := data.SparseSynthetic(r, 37, 20, 4, 0)
	path := filepath.Join(f.TempDir(), "seed.bolt")
	if err := store.Write(path, ds, opt); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzReadStore feeds arbitrary bytes to the store reader: Open plus a
// full Verify must either succeed or return an error — never panic,
// hang or over-allocate. The seed corpus covers valid files at several
// chunk geometries plus the corruption classes the fail-closed tests
// pin (truncation, payload/directory bit flips, header field damage).
func FuzzReadStore(f *testing.F) {
	valid := storeBytes(f, store.Options{ChunkRows: 8})
	f.Add(valid)
	f.Add(storeBytes(f, store.Options{ChunkRows: 1}))
	f.Add(storeBytes(f, store.Options{ChunkRows: 64}))

	mutate := func(fn func(b []byte) []byte) {
		f.Add(fn(append([]byte(nil), valid...)))
	}
	mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b })           // magic
	mutate(func(b []byte) []byte { b[8] = 99; return b })              // version
	mutate(func(b []byte) []byte { b[12] = 0; return b })              // chunkRows = 0
	mutate(func(b []byte) []byte { b[16] = 0xFF; return b })           // dim damage
	mutate(func(b []byte) []byte { b[24] ^= 0x01; return b })          // rows damage
	mutate(func(b []byte) []byte { b[36] ^= 0x01; return b })          // flags damage
	mutate(func(b []byte) []byte { b[48] ^= 0x01; return b })          // chunk header rows
	mutate(func(b []byte) []byte { b[52] ^= 0x01; return b })          // chunk header nnz
	mutate(func(b []byte) []byte { b[48+16+8] ^= 0x80; return b })     // payload value
	mutate(func(b []byte) []byte { b[len(b)-48] ^= 0x01; return b })   // footer dirOffset
	mutate(func(b []byte) []byte { b[len(b)-48-1] ^= 0x01; return b }) // directory byte
	mutate(func(b []byte) []byte { return b[:len(b)-1] })              // truncated footer
	mutate(func(b []byte) []byte { return b[:64] })                    // truncated mid-chunk
	mutate(func(b []byte) []byte { return append(b, 0, 0, 0, 0) })     // trailing garbage
	f.Add([]byte{})
	f.Add([]byte("BOLTSTR1"))

	// Version-2 seeds: valid files at several geometries, plus
	// CRC-consistent varint-section damage so the fuzzer starts inside
	// the delta decoder's error paths (a plain bit flip is caught by the
	// chunk CRC before the decoder ever runs).
	valid2 := storeBytes(f, store.Options{ChunkRows: 8, Version: 2})
	f.Add(valid2)
	f.Add(storeBytes(f, store.Options{ChunkRows: 1, Version: 2}))
	f.Add(storeBytes(f, store.Options{ChunkRows: 64, Version: 2}))
	mutate2 := func(fn func(b []byte) []byte) {
		b := fn(append([]byte(nil), valid2...))
		// Re-seal chunk 0's payload CRC so the damage reaches the decoder.
		plen := int(binary.LittleEndian.Uint32(b[56:60]))
		if 64+plen <= len(b) {
			binary.LittleEndian.PutUint32(b[60:64], crc32.ChecksumIEEE(b[64:64+plen]))
		}
		f.Add(b)
	}
	chunk0plen := int(binary.LittleEndian.Uint32(valid2[56:60]))
	mutate2(func(b []byte) []byte { b[64+chunk0plen-1] = 0xFF; return b }) // pad / varint tail byte
	mutate2(func(b []byte) []byte { b[64+chunk0plen-8] = 0x80; return b }) // dangling continuation bit
	mutate2(func(b []byte) []byte {                                        // zeroed varint section tail
		for o := 64 + chunk0plen - 16; o < 64+chunk0plen; o++ {
			b[o] = 0
		}
		return b
	})
	mutate2(func(b []byte) []byte { // v2 payload under a v1 header version
		binary.LittleEndian.PutUint32(b[8:12], 1)
		binary.LittleEndian.PutUint32(b[40:44], crc32.ChecksumIEEE(b[0:40]))
		return b
	})
	mutate2(func(b []byte) []byte { b[56] ^= 0x04; return b }) // plen misaligned by 4

	// One scratch file per worker process: os.WriteFile truncates, so
	// each exec sees only its own bytes, without a TempDir per exec.
	var scratch string
	var scratchOnce sync.Once

	f.Fuzz(func(t *testing.T, content []byte) {
		scratchOnce.Do(func() {
			fh, err := os.CreateTemp("", "boltstore-fuzz-*.bolt")
			if err != nil {
				t.Fatal(err)
			}
			scratch = fh.Name()
			fh.Close()
		})
		path := scratch
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Skip()
		}
		r, err := store.Open(path)
		if err != nil {
			return // failed closed
		}
		defer r.Close()
		// A file Open accepts must serve consistent metadata and either
		// verify fully or error — never panic.
		if r.Len() < 1 || r.Dim() < 1 || r.Chunks() < 1 {
			t.Fatalf("Open accepted a store with Len=%d Dim=%d Chunks=%d", r.Len(), r.Dim(), r.Chunks())
		}
		if err := r.Verify(); err != nil {
			return
		}
		// A fully verified store must serve every row without panicking.
		for i := 0; i < r.Len(); i++ {
			x, _ := r.AtSparse(i)
			if got := x.NNZ(); got < 0 {
				t.Fatalf("row %d: negative nnz %d", i, got)
			}
		}
	})
}
