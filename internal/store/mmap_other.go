//go:build !((linux || darwin) && (amd64 || arm64))

package store

import "os"

// Fallback stubs: no mapped fast path — Readers decode chunks through
// buffered pread into reused arenas instead.

func mapFile(*os.File, int64) []byte { return nil }

func unmapFile([]byte) {}

// asF64 and asInt are never reached when mapFile returns nil; they
// exist so reader.go compiles unconditionally.
func asF64([]byte) []float64 { panic("store: mapped path on unsupported platform") }

func asInt([]byte) []int { panic("store: mapped path on unsupported platform") }
