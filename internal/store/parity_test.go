package store_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// bitsEqual compares two models for bit-for-bit identity.
func bitsEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d != %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: w[%d] = %x, want %x — store-backed training diverged from in-memory", tag, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestStoreTrainingParity pins the tentpole invariant: training from a
// store file is bit-identical to training from the in-memory dataset
// it was written from, under every execution strategy. The store holds
// the exact IEEE-754 bits and the engine consumes randomness
// identically either way, so the final iterates must agree exactly —
// not approximately.
func TestStoreTrainingParity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ds, _ := data.KDDSimSparse(r, 0.004) // ~2.1k rows, d=122, ~10% density
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 256}))

	f := loss.NewLogistic(1e-2, 0)
	base := sgd.Config{
		Loss:   f,
		Step:   sgd.InvSqrtT(1),
		Radius: 100,
	}

	cases := []struct {
		name    string
		cfg     engine.Config
		seed    int64
		passes  int
		average bool
	}{
		{name: "sequential", cfg: engine.Config{Strategy: engine.Sequential}, seed: 1, passes: 3},
		{name: "sequential-avg", cfg: engine.Config{Strategy: engine.Sequential}, seed: 2, passes: 3, average: true},
		{name: "sharded-4", cfg: engine.Config{Strategy: engine.Sharded, Workers: 4}, seed: 3, passes: 3},
		{name: "streaming", cfg: engine.Config{Strategy: engine.Streaming}, seed: 4, passes: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(s sgd.Samples) *engine.Result {
				cfg := tc.cfg
				cfg.SGD = base
				cfg.SGD.Passes = tc.passes
				cfg.SGD.Average = tc.average
				if tc.cfg.Strategy != engine.Streaming {
					cfg.SGD.Rand = rand.New(rand.NewSource(tc.seed))
				}
				res, err := engine.Run(s, cfg)
				if err != nil {
					t.Fatalf("engine.Run: %v", err)
				}
				return res
			}
			mem := run(ds)
			disk := run(rd)
			bitsEqual(t, "W", disk.W, mem.W)
			if tc.average {
				bitsEqual(t, "WAvg", disk.WAvg, mem.WAvg)
			}
			if !sgd.UsesSparseKernel(rd, sgd.Config{Loss: f}) {
				t.Fatal("store reader fell off the sparse kernel")
			}
		})
	}
}

// TestStorePrivateTrainingParity pins the DESIGN.md §7 invariant that
// sensitivity calibration is representation-independent: a private
// TrainCtx run from a store file produces the same calibrated Δ₂ and —
// because noise is drawn from the same Rand after identical
// consumption — the bit-identical released model, per strategy.
func TestStorePrivateTrainingParity(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ds, _ := data.KDDSimSparse(r, 0.002)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 128}))

	f := loss.NewLogistic(1e-2, 0)
	for _, tc := range []struct {
		name     string
		strategy engine.Strategy
		workers  int
		passes   int
	}{
		{"sequential", engine.Sequential, 1, 2},
		{"sharded-3", engine.Sharded, 3, 2},
		{"streaming", engine.Streaming, 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(s sgd.Samples) *core.Result {
				res, err := core.TrainCtx(context.Background(), s, f,
					core.WithBudget(dp.Budget{Epsilon: 1}),
					core.WithPasses(tc.passes), core.WithBatch(10), core.WithRadius(100),
					core.WithStrategy(tc.strategy, tc.workers),
					core.WithRand(rand.New(rand.NewSource(99))))
				if err != nil {
					t.Fatalf("TrainCtx: %v", err)
				}
				return res
			}
			mem := run(ds)
			disk := run(rd)
			if disk.Sensitivity != mem.Sensitivity {
				t.Fatalf("Δ₂ differs by representation: %v != %v", disk.Sensitivity, mem.Sensitivity)
			}
			if disk.NoiseNorm != mem.NoiseNorm {
				t.Fatalf("noise norm differs: %v != %v", disk.NoiseNorm, mem.NoiseNorm)
			}
			bitsEqual(t, "private W", disk.W, mem.W)
		})
	}
}

// TestStoreScoringParity: eval's scoring helpers accept a store reader
// like any other sample source and take the sparse tier.
func TestStoreScoringParity(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ds := data.SparseSynthetic(r, 400, 50, 6, 0.02)
	rd := openStore(t, writeStore(t, t.TempDir(), ds, store.Options{ChunkRows: 64}))

	w := make([]float64, ds.Dim())
	for i := range w {
		w[i] = r.NormFloat64()
	}
	model := &eval.Linear{W: w}
	if got, want := eval.Accuracy(rd, model), eval.Accuracy(ds, model); got != want {
		t.Fatalf("store-backed accuracy %v != in-memory %v", got, want)
	}
	if got, want := eval.Errors(rd, model), eval.Errors(ds, model); got != want {
		t.Fatalf("store-backed errors %v != in-memory %v", got, want)
	}
}
