package store_test

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"path/filepath"
	"testing"

	"boltondp/internal/engine"
	"boltondp/internal/store"
)

// goldenV1CRC pins the decoded content of testdata/golden_v1.bolt: the
// canonical serialization (per row: nnz, label bits, then each
// index/value-bits pair, all as little-endian u64) hashed with
// CRC32 (IEEE). Printed by testdata/gen.go at generation time.
const goldenV1CRC = 0xef9b4067

// TestGoldenV1Fixture is the backward-compatibility anchor for the file
// format: a version-1 store committed to the repository must keep
// opening and decoding bit-for-bit as the format grows new versions,
// and rewriting its rows as version 2 must preserve every bit and train
// identically. If this test fails, the reader broke old files — fix the
// reader, never regenerate the fixture.
func TestGoldenV1Fixture(t *testing.T) {
	rd := openStore(t, filepath.Join("testdata", "golden_v1.bolt"))
	if rd.Version() != 1 {
		t.Fatalf("Version = %d, want 1", rd.Version())
	}
	if rd.Len() != 123 || rd.Dim() != 60 || rd.ChunkRows() != 32 || rd.Chunks() != 4 {
		t.Fatalf("fixture geometry changed: rows=%d dim=%d chunkRows=%d chunks=%d",
			rd.Len(), rd.Dim(), rd.ChunkRows(), rd.Chunks())
	}
	if err := rd.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	crc := crc32.NewIEEE()
	var u [8]byte
	emit := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		crc.Write(u[:])
	}
	for i := 0; i < rd.Len(); i++ {
		x, y := rd.AtSparse(i)
		emit(uint64(len(x.Idx)))
		emit(math.Float64bits(y))
		for k := range x.Idx {
			emit(uint64(x.Idx[k]))
			emit(math.Float64bits(x.Val[k]))
		}
	}
	if got := crc.Sum32(); got != goldenV1CRC {
		t.Fatalf("decoded content CRC %08x != pinned %08x — the reader no longer decodes v1 files it used to", got, goldenV1CRC)
	}

	// Rewriting the fixture's rows as v2 preserves every bit and trains
	// bit-identically — old data migrates losslessly to the new encoding.
	v2path := filepath.Join(t.TempDir(), "golden_v2.bolt")
	if err := store.Write(v2path, rd, store.Options{ChunkRows: 32, Version: 2}); err != nil {
		t.Fatal(err)
	}
	v2 := openStore(t, v2path)
	sameRows(t, "v2-rewrite", rd, v2)
	run := func(s *store.Reader) []float64 {
		res, err := engine.Run(s, epochCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res.W
	}
	bitsEqual(t, "migrated W", run(v2), run(rd))
}
