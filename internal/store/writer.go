package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Options configures a Writer.
type Options struct {
	// ChunkRows is the number of rows per chunk (default
	// DefaultChunkRows). Every chunk but the last holds exactly this
	// many rows — the invariant that makes row → chunk lookup O(1).
	ChunkRows int

	// Classes, when positive, overrides the class count recorded in the
	// header. When zero the writer infers it from the distinct labels
	// it sees, exactly as the LIBSVM loaders do.
	Classes int

	// RemapLabels01, when set, records FlagLabels01 if the appended
	// label set turns out to be exactly {0, 1}, making the reader serve
	// those labels remapped to ±1. It exists for conversion paths that
	// write raw, never-loaded labels (dpsgd -cache) and want the
	// LIBSVM loaders' convenience remap without a second pass. It is
	// deliberately opt-in: a plain Write must round-trip labels
	// bit-for-bit, whatever they are.
	RemapLabels01 bool

	// Version selects the chunk payload encoding: 1 (the default,
	// raw 8-byte index sections, zero-copy mapped reads) or 2
	// (delta+varint index sections, ~25-45% smaller files at KDD-like
	// density). Readers open both; values and labels are bit-identical
	// either way.
	Version int
}

func (o Options) withDefaults() (Options, error) {
	if o.ChunkRows == 0 {
		o.ChunkRows = DefaultChunkRows
	}
	if o.ChunkRows < 1 || o.ChunkRows > maxChunkRows {
		return o, fmt.Errorf("store: ChunkRows %d out of range [1,%d]", o.ChunkRows, maxChunkRows)
	}
	if o.Classes < 0 {
		return o, fmt.Errorf("store: Classes %d < 0", o.Classes)
	}
	if o.Version == 0 {
		o.Version = formatV1
	}
	if o.Version != formatV1 && o.Version != formatV2 {
		return o, fmt.Errorf("store: Version %d unsupported (want %d or %d)", o.Version, formatV1, formatV2)
	}
	return o, nil
}

// maxTrackedLabels caps the writer's distinct-label tracking; past it
// the class count is recorded as unknown (0) rather than growing a map
// without bound on regression-style labels.
const maxTrackedLabels = 1024

// Writer streams labeled sparse rows into a store file in one pass.
// Rows arrive through Append in their final order; Close writes the
// chunk directory and footer and patches the header with the totals
// (row count, dimension, class count) that are only known at the end,
// so neither the row count nor the dimension needs to be declared up
// front — the property the streaming LIBSVM conversion relies on.
//
// A Writer is single-goroutine; it holds one chunk of buffered rows
// (O(ChunkRows · row nnz) memory) and never the whole dataset.
type Writer struct {
	f   *os.File
	bw  *bufio.Writer
	off int64 // file offset of the next chunk header

	opt    Options
	dim    int // max index seen + 1 (or SetDim floor)
	rows   int
	nnz    int64
	closed bool

	// Current chunk accumulators.
	indptr []int
	idx    []int
	val    []float64
	y      []float64

	offsets []int64 // chunk-header offsets (the directory)
	payload []byte  // reused chunk encode buffer

	labels   map[float64]struct{}
	overflow bool // more than maxTrackedLabels distinct labels
}

// Create opens path for writing (truncating any existing file) and
// returns a Writer positioned at the first row.
func Create(path string, opt Options) (*Writer, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{
		f:      f,
		bw:     bufio.NewWriterSize(f, 1<<20),
		off:    headerSize,
		opt:    opt,
		indptr: make([]int, 1, opt.ChunkRows+1),
		labels: make(map[float64]struct{}),
	}
	// Placeholder header; Close patches the final dim/rows/classes in.
	var hdr [headerSize]byte
	(&header{version: opt.Version, chunkRows: opt.ChunkRows, dim: 1, rows: 1}).encode(hdr[:])
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return w, nil
}

// SetDim raises the recorded dimension floor: the final dimension is
// the larger of this and (max index seen + 1). Use it when the logical
// dimension exceeds the largest populated column.
func (w *Writer) SetDim(d int) {
	if d > w.dim {
		w.dim = d
	}
}

// Rows returns the number of rows appended so far.
func (w *Writer) Rows() int { return w.rows }

// NNZ returns the total non-zeros appended so far.
func (w *Writer) NNZ() int64 { return w.nnz }

// Dim returns the dimension as currently known (max index seen + 1, or
// the SetDim floor).
func (w *Writer) Dim() int { return w.dim }

// Density returns NNZ / (rows·dim) over what has been appended so far
// — the same estimate data.SparseDataset.Density reports, available
// after the single conversion pass without re-reading anything.
func (w *Writer) Density() float64 {
	if w.rows == 0 || w.dim == 0 {
		return 0
	}
	return float64(w.nnz) / (float64(w.rows) * float64(w.dim))
}

// Append adds one row. The row's indices must be strictly increasing
// and non-negative (the vec.Sparse contract — validated here so a
// malformed row fails the conversion, not a later training run).
func (w *Writer) Append(x *vec.Sparse, yv float64) error {
	if w.closed {
		return fmt.Errorf("store: Append after Close")
	}
	if len(x.Idx) != len(x.Val) {
		return fmt.Errorf("store: row %d: index/value length mismatch %d != %d", w.rows, len(x.Idx), len(x.Val))
	}
	prev := -1
	for _, ix := range x.Idx {
		if ix <= prev {
			return fmt.Errorf("store: row %d: indices not strictly increasing at %d", w.rows, ix)
		}
		prev = ix
	}
	if prev >= w.dim {
		w.dim = prev + 1
	}
	w.idx = append(w.idx, x.Idx...)
	w.val = append(w.val, x.Val...)
	w.indptr = append(w.indptr, len(w.idx))
	w.y = append(w.y, yv)
	w.rows++
	w.nnz += int64(len(x.Idx))
	if !w.overflow {
		w.labels[yv] = struct{}{}
		if len(w.labels) > maxTrackedLabels {
			w.overflow = true
			w.labels = nil
		}
	}
	if len(w.y) == w.opt.ChunkRows {
		return w.flushChunk()
	}
	return nil
}

// flushChunk encodes and writes the buffered rows as one chunk.
func (w *Writer) flushChunk() error {
	rows := len(w.y)
	if rows == 0 {
		return nil
	}
	nnz := len(w.idx)
	// The bound holds for both encodings: a v2 payload is never larger
	// than the v1 payload plus varint slack already inside MaxUint32
	// whenever the v1 length is.
	if int64(payloadLen(rows, nnz)) > math.MaxUint32 {
		return fmt.Errorf("store: chunk of %d rows holds %d non-zeros, exceeding the format; lower ChunkRows", rows, nnz)
	}
	var p []byte
	if w.opt.Version == formatV2 {
		p = w.encodeChunkV2(rows, nnz)
	} else {
		p = w.encodeChunkV1(rows, nnz)
	}
	plen := len(p)

	var hdr [chunkHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(rows))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(nnz))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(plen))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(p))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := w.bw.Write(p); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.offsets = append(w.offsets, w.off)
	w.off += int64(chunkHeaderSize + plen)

	w.indptr = w.indptr[:1]
	w.idx = w.idx[:0]
	w.val = w.val[:0]
	w.y = w.y[:0]
	return nil
}

// encodeChunkV1 encodes the buffered rows as a version-1 payload into
// the reused buffer: four raw 8-byte little-endian arrays.
func (w *Writer) encodeChunkV1(rows, nnz int) []byte {
	plen := payloadLen(rows, nnz)
	if cap(w.payload) < plen {
		w.payload = make([]byte, plen)
	}
	p := w.payload[:plen]
	o := 0
	for _, v := range w.val {
		putF64(p, o, v)
		o += 8
	}
	for _, v := range w.y {
		putF64(p, o, v)
		o += 8
	}
	for _, v := range w.indptr {
		binary.LittleEndian.PutUint64(p[o:o+8], uint64(v))
		o += 8
	}
	for _, v := range w.idx {
		binary.LittleEndian.PutUint64(p[o:o+8], uint64(v))
		o += 8
	}
	return p
}

// encodeChunkV2 encodes the buffered rows as a version-2 payload into
// the reused buffer: raw val/y, then uvarint row lengths, then per-row
// first-absolute-then-gap uvarint indices, zero-padded to 8 bytes.
func (w *Writer) encodeChunkV2(rows, nnz int) []byte {
	_, maxLen := payloadBoundsV2(rows, nnz)
	if cap(w.payload) < maxLen {
		w.payload = make([]byte, maxLen)
	}
	p := w.payload[:maxLen]
	o := 0
	for _, v := range w.val {
		putF64(p, o, v)
		o += 8
	}
	for _, v := range w.y {
		putF64(p, o, v)
		o += 8
	}
	for i := 1; i <= rows; i++ {
		o += binary.PutUvarint(p[o:], uint64(w.indptr[i]-w.indptr[i-1]))
	}
	for r := 0; r < rows; r++ {
		lo, hi := w.indptr[r], w.indptr[r+1]
		for k := lo; k < hi; k++ {
			gap := w.idx[k]
			if k > lo {
				gap -= w.idx[k-1] // ≥ 1: Append enforced strict increase
			}
			o += binary.PutUvarint(p[o:], uint64(gap))
		}
	}
	// Zero the pad explicitly — the buffer is reused across chunks and
	// the reader rejects non-zero pad bytes as corruption.
	for end := align8(o); o < end; o++ {
		p[o] = 0
	}
	return p[:o]
}

// classCount resolves the class count the header records: the explicit
// option, the distinct-label count (min 2, as the loaders report), or
// 0 when tracking overflowed.
func (w *Writer) classCount() int {
	if w.opt.Classes > 0 {
		return w.opt.Classes
	}
	if w.overflow {
		return 0
	}
	c := len(w.labels)
	if c < 2 {
		c = 2
	}
	return c
}

// labels01 reports whether the remap flag should be recorded: the
// caller opted in and the raw label set is exactly {0, 1}.
func (w *Writer) labels01() bool {
	if !w.opt.RemapLabels01 || w.overflow || len(w.labels) != 2 {
		return false
	}
	_, has0 := w.labels[0]
	_, has1 := w.labels[1]
	return has0 && has1
}

// Abort discards the conversion: it closes the file handle without
// finalizing the store and removes the partial file. For error paths;
// a successful conversion ends with Close.
func (w *Writer) Abort() {
	if !w.closed {
		w.closed = true
		w.f.Close()
	}
	os.Remove(w.f.Name())
}

// Close flushes the final chunk, writes the directory and footer,
// patches the header with the final totals and syncs the file. A store
// with zero rows is an error (mirroring the loaders' "no examples").
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	defer w.f.Close()
	if err := w.flushChunk(); err != nil {
		return err
	}
	if w.rows == 0 {
		return fmt.Errorf("store: no examples")
	}

	dir := make([]byte, 8*len(w.offsets))
	for i, off := range w.offsets {
		binary.LittleEndian.PutUint64(dir[8*i:8*i+8], uint64(off))
	}
	if _, err := w.bw.Write(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	ft := footer{
		dirOffset: w.off,
		rows:      w.rows,
		nnz:       w.nnz,
		chunks:    len(w.offsets),
		dirCRC:    crc32.ChecksumIEEE(dir),
	}
	var fbuf [footerSize]byte
	ft.encode(fbuf[:])
	if _, err := w.bw.Write(fbuf[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	var flags uint32
	if w.labels01() {
		flags |= FlagLabels01
	}
	var hdr [headerSize]byte
	(&header{
		version:   w.opt.Version,
		chunkRows: w.opt.ChunkRows,
		dim:       w.dim,
		rows:      w.rows,
		classes:   w.classCount(),
		flags:     flags,
	}).encode(hdr[:])
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Write converts any sparse-tier sample source into a store file in
// one sequential pass — the bulk form of Create/Append/Close. The
// source's rows are written in their natural order, so a model trained
// from the resulting store is bit-identical to one trained from src
// under the same configuration and seed.
func Write(path string, src sgd.SparseSamples, opt Options) error {
	w, err := Create(path, opt)
	if err != nil {
		return err
	}
	w.SetDim(src.Dim())
	m := src.Len()
	for i := 0; i < m; i++ {
		x, yv := src.AtSparse(i)
		if err := w.Append(x, yv); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}
