// Package store is the out-of-core data tier: a compact binary
// columnar dataset format holding labeled sparse rows as a sequence of
// CSR (compressed sparse row) chunks, written once and then trained
// from directly — the on-disk analogue of data.SparseDataset, in the
// spirit of Bismarck's epoch passes over on-disk relations that the
// source paper builds on.
//
// A store file turns "the training set fits in RAM as Go structs" from
// an architectural assumption into a per-run choice: Reader implements
// both tiers of the engine's data contract (sgd.Samples and
// sgd.SparseSamples) plus engine.Sharder, so the Sequential, Sharded
// and Streaming strategies all train straight from disk, holding one
// decoded chunk per scanning view in memory. A Streaming run over a
// store is genuinely single-pass O(d + chunk) memory at any number of
// rows.
//
// # File format (version 1, little-endian throughout)
//
//	Header   (48 B)  magic "BOLTSTR1", version u32, chunkRows u32,
//	                 dim u64, rows u64, classes u32, flags u32,
//	                 crc32(IEEE) u32 over the preceding 40 bytes, pad u32
//	Chunk*           chunkRows rows each (the last chunk holds the
//	                 remainder), as:
//	  ChunkHeader (16 B)  rows u32, nnz u32, payloadLen u32,
//	                      crc32(IEEE) u32 over the payload
//	  Payload             val    f64[nnz]
//	                      y      f64[rows]
//	                      indptr i64[rows+1]  (chunk-local, indptr[0]=0)
//	                      idx    i64[nnz]     (strictly increasing per row)
//	Directory        chunk-header file offsets, u64 per chunk
//	Footer   (48 B)  dirOffset u64, rows u64, nnz u64, chunks u32,
//	                 dirCRC u32 (crc32 over the directory),
//	                 crc32(IEEE) u32 over the preceding 32 bytes, pad u32,
//	                 magic "BOLTEND1"
//
// The layout is designed for zero-decode reads, Arrow-style: every
// section is a native little-endian array of 8-byte elements, and
// because the header (40 B), chunk header (16 B) and every payload are
// multiples of 8 bytes, all sections land 8-byte-aligned in the file.
// On little-endian platforms the Reader memory-maps the file and
// serves rows as slices straight into the mapping — a chunk "decode"
// is a CRC + invariant check the first time a cursor visits the chunk
// and pure slice arithmetic after that, which is what keeps a
// store-backed training epoch within a few percent of in-memory (the
// CI-gated 15% budget). Spending 8 bytes per column index instead of 4
// is the deliberate price of that zero-copy read path. Platforms
// without the mapped fast path fall back to buffered pread + explicit
// decode into reused arenas, bit-identical either way.
//
// # Format version 2 (delta+varint index sections)
//
// Version 2 keeps the container — header, chunk headers, directory,
// footer, CRCs, 8-byte alignment — and the val/y sections byte-for-byte
// identical to version 1, but replaces the two index sections of each
// chunk payload with a delta+varint encoding:
//
//	Payload  val     f64[nnz]            (raw, as in v1)
//	         y       f64[rows]           (raw, as in v1)
//	         indptr  uvarint[rows]       row lengths: indptr[i+1]-indptr[i]
//	         idx     uvarint[nnz]        per row: first index absolute,
//	                                     then gaps idx[k]-idx[k-1] (≥ 1)
//	         pad     0x00 × (0..7)       to the next 8-byte boundary
//
// CSR index sections are the redundancy in the format: indptr is a
// monotone ramp and per-row indices are strictly increasing, so both
// compress to small non-negative integers that varints store in 1–2
// bytes instead of 8. On KDD-like density that shrinks the file well
// past the ≥25% acceptance floor while values and labels — the bits
// that decide the model — stay raw IEEE-754, preserving the
// bit-identical-training invariant below. The price is that v2 index
// sections can no longer be aliased into the mapping: both read
// backends decode them into the cursor's reused arenas on every chunk
// switch (val/y still alias the mapping on the mapped backend). The
// decode is fail-closed like everything else: a truncated or overlong
// varint, a zero gap, an index ≥ dim, a row-length sum ≠ nnz, or a
// non-zero pad byte is an error, never a silently wrong row.
//
// The header is written with zero dim/rows at Create and patched at
// Close, so a Writer streams rows of unknown count and dimension in one
// pass (the LIBSVM conversion path). Every read validates fail-closed:
// magic, version, footer/header row agreement, directory CRC and
// monotonicity at Open; chunk CRC, geometry and CSR invariants (indptr
// monotone and nnz-terminated, indices strictly increasing and < dim)
// at every chunk decode. A flipped bit anywhere in the file is an
// error, never a silently wrong model.
//
// Values and labels are stored as raw IEEE-754 bits, so a model trained
// from a store is bit-identical to one trained from the in-memory
// dataset the store was written from — the representation-independence
// invariant DESIGN.md §7 pins (sensitivity calibration depends only on
// (L, β, γ, m, strategy), never on where the bytes live).
//
// FlagLabels01 records that the writer was asked to remap
// (Options.RemapLabels01) and saw the label set {0, 1} exactly; the
// reader remaps such labels to ±1 at decode time, matching
// data.LoadLIBSVM's convenience remap without a second pass over the
// file. Without the opt-in, labels round-trip bit-for-bit.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	headerMagic = "BOLTSTR1"
	footerMagic = "BOLTEND1"

	// Format versions. Version 1 stores every section as raw 8-byte
	// little-endian arrays (zero-copy mapped reads). Version 2 keeps
	// val/y raw but delta+varint-compresses the two index sections —
	// see the "format version 2" section of the package comment.
	// Readers accept both; Writers default to 1 (Options.Version).
	formatV1 = 1
	formatV2 = 2

	headerSize      = 48
	chunkHeaderSize = 16
	footerSize      = 48

	// DefaultChunkRows is the chunk granularity Writers use unless
	// overridden: large enough that per-chunk costs (one pread, one CRC,
	// four array decodes) amortize to nothing per row, small enough that
	// a scanning view's working set stays a few hundred KiB at KDD-like
	// density.
	DefaultChunkRows = 4096

	// maxChunkRows bounds what a Reader will accept, so a corrupt
	// header cannot make it allocate an absurd arena.
	maxChunkRows = 1 << 22
)

// FlagLabels01 marks a store written under Options.RemapLabels01 whose
// raw labels were exactly {0, 1}; the reader serves them remapped to
// ±1 (the loaders' convenience remap).
const FlagLabels01 = 1 << 0

// header is the decoded fixed-size file header.
type header struct {
	version   int
	chunkRows int
	dim       int
	rows      int
	classes   int
	flags     uint32
}

func (h *header) encode(buf []byte) {
	copy(buf[0:8], headerMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(h.version))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.chunkRows))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.dim))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.rows))
	binary.LittleEndian.PutUint32(buf[32:36], uint32(h.classes))
	binary.LittleEndian.PutUint32(buf[36:40], h.flags)
	// The fields above are load-bearing for correctness (a flipped
	// flags or dim bit would silently change the served data), so the
	// header carries its own checksum like every chunk does.
	binary.LittleEndian.PutUint32(buf[40:44], crc32.ChecksumIEEE(buf[0:40]))
	binary.LittleEndian.PutUint32(buf[44:48], 0)
}

func decodeHeader(buf []byte) (*header, error) {
	if len(buf) != headerSize {
		return nil, fmt.Errorf("short header (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != headerMagic {
		return nil, fmt.Errorf("bad magic %q (not a store file)", buf[0:8])
	}
	v := binary.LittleEndian.Uint32(buf[8:12])
	if v != formatV1 && v != formatV2 {
		return nil, fmt.Errorf("unsupported format version %d (want %d or %d)", v, formatV1, formatV2)
	}
	if got, want := crc32.ChecksumIEEE(buf[0:40]), binary.LittleEndian.Uint32(buf[40:44]); got != want {
		return nil, fmt.Errorf("header checksum mismatch (%08x != %08x)", got, want)
	}
	h := &header{
		version:   int(v),
		chunkRows: int(binary.LittleEndian.Uint32(buf[12:16])),
		dim:       int(binary.LittleEndian.Uint64(buf[16:24])),
		rows:      int(binary.LittleEndian.Uint64(buf[24:32])),
		classes:   int(binary.LittleEndian.Uint32(buf[32:36])),
		flags:     binary.LittleEndian.Uint32(buf[36:40]),
	}
	if h.chunkRows < 1 || h.chunkRows > maxChunkRows {
		return nil, fmt.Errorf("chunk row count %d out of range [1,%d]", h.chunkRows, maxChunkRows)
	}
	if h.dim < 1 {
		return nil, fmt.Errorf("dimension %d < 1", h.dim)
	}
	if h.rows < 1 {
		return nil, fmt.Errorf("row count %d < 1", h.rows)
	}
	return h, nil
}

// footer is the decoded fixed-size file trailer.
type footer struct {
	dirOffset int64
	rows      int
	nnz       int64
	chunks    int
	dirCRC    uint32
}

func (f *footer) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(f.dirOffset))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(f.rows))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(f.nnz))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(f.chunks))
	binary.LittleEndian.PutUint32(buf[28:32], f.dirCRC)
	binary.LittleEndian.PutUint32(buf[32:36], crc32.ChecksumIEEE(buf[0:32]))
	binary.LittleEndian.PutUint32(buf[36:40], 0)
	copy(buf[40:48], footerMagic)
}

func decodeFooter(buf []byte) (*footer, error) {
	if len(buf) != footerSize {
		return nil, fmt.Errorf("short footer (%d bytes)", len(buf))
	}
	if string(buf[40:48]) != footerMagic {
		return nil, fmt.Errorf("bad footer magic %q (truncated or overwritten file)", buf[40:48])
	}
	if got, want := crc32.ChecksumIEEE(buf[0:32]), binary.LittleEndian.Uint32(buf[32:36]); got != want {
		return nil, fmt.Errorf("footer checksum mismatch (%08x != %08x)", got, want)
	}
	f := &footer{
		dirOffset: int64(binary.LittleEndian.Uint64(buf[0:8])),
		rows:      int(binary.LittleEndian.Uint64(buf[8:16])),
		nnz:       int64(binary.LittleEndian.Uint64(buf[16:24])),
		chunks:    int(binary.LittleEndian.Uint32(buf[24:28])),
		dirCRC:    binary.LittleEndian.Uint32(buf[28:32]),
	}
	if f.dirOffset < headerSize {
		return nil, fmt.Errorf("directory offset %d inside header", f.dirOffset)
	}
	if f.chunks < 1 {
		return nil, fmt.Errorf("chunk count %d < 1", f.chunks)
	}
	if f.rows < 1 {
		return nil, fmt.Errorf("footer row count %d < 1", f.rows)
	}
	return f, nil
}

// payloadLen returns the byte length of a version-1 chunk payload with
// the given geometry: val f64[nnz] + y f64[rows] + indptr i64[rows+1] +
// idx i64[nnz], all 8-byte elements.
func payloadLen(rows, nnz int) int {
	return 8 * (2*nnz + 2*rows + 1)
}

// payloadFixedV2 is the byte length of the raw prefix of a version-2
// chunk payload (val + y); the varint index sections follow it.
func payloadFixedV2(rows, nnz int) int {
	return 8 * (nnz + rows)
}

// payloadBoundsV2 returns the possible [min, max] byte lengths of a
// version-2 chunk payload with the given geometry. The varint sections
// hold exactly rows+nnz varints of 1–10 bytes each, and the payload is
// padded to an 8-byte boundary, so a plen outside these bounds is
// corruption the geometry check can reject before decoding.
func payloadBoundsV2(rows, nnz int) (min, max int) {
	fixed := payloadFixedV2(rows, nnz)
	return align8(fixed + rows + nnz), align8(fixed + 10*(rows+nnz))
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int {
	return (n + 7) &^ 7
}

// plenConsistent reports whether plen is a possible payload length for
// the given chunk geometry under format version v. Version 1 payloads
// have exactly one length; version 2 lengths depend on the varint bytes,
// so the check is the [min, max] envelope plus the alignment invariant —
// the exact accounting happens fail-closed in the varint decode.
func plenConsistent(v, rows, nnz, plen int) bool {
	if v == formatV2 {
		lo, hi := payloadBoundsV2(rows, nnz)
		return plen >= lo && plen <= hi && plen%8 == 0
	}
	return plen == payloadLen(rows, nnz)
}

// putF64 appends v's IEEE-754 bits.
func putF64(buf []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(v))
}

// getF64 reads IEEE-754 bits at off.
func getF64(buf []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
}
