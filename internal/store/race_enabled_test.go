//go:build race

package store_test

// raceEnabled disables the epoch-overhead timing gate when race
// instrumentation distorts the relative cost of decode vs arithmetic.
const raceEnabled = true
