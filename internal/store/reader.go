package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Reader is a random-access view of a store file implementing both
// tiers of the engine's data contract (sgd.Samples, sgd.SparseSamples)
// plus engine.Sharder, so every execution strategy trains from it
// directly. Each scanning view holds one chunk's worth of decoded
// state: sequential access (the Streaming strategy, risk evaluation,
// batch scoring) touches each chunk once per pass, while permutation
// access (the Sequential strategy) pays a chunk switch whenever it
// crosses a chunk boundary — correct at any access pattern, fastest
// on scans.
//
// On little-endian 64-bit unix hosts the file is memory-mapped and
// rows are served as slices straight into the mapping: a chunk switch
// is a CRC + invariant check the first time a view visits the chunk
// and pure slice arithmetic after that. Elsewhere chunks are pread
// into reused arenas. Training is bit-identical either way.
//
// Like the other reused-buffer sources (bismarck.Table,
// data.SparseDataset), a Reader must not be shared across concurrent
// runs; the sharded engine goes through Shard, which hands each worker
// an independent view over the same file handle (reads are pread /
// read-only mapping accesses and never race).
//
// At and AtSparse implement interfaces without error returns, so on
// I/O failure or corruption detected mid-training they panic with the
// underlying error; every chunk is CRC- and invariant-checked before
// any of its rows are served, so a bad byte surfaces as that panic (or
// as an error from the error-returning ChunkCSR / Verify paths), never
// as a silently wrong row.
type Reader struct {
	f    *os.File
	path string
	mm   []byte // whole-file mapping; nil selects the pread fallback

	hdr       header
	nnz       int64
	chunks    int
	dirOffset int64
	offsets   []int64

	cur cursor
}

// Open validates path's header, footer and chunk directory and returns
// a Reader over it. Chunk payloads are validated lazily, CRC first, as
// they are first visited.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r, err := newReader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f *os.File, path string) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size < headerSize+chunkHeaderSize+footerSize {
		return nil, fmt.Errorf("store: %s: file too short (%d bytes)", path, size)
	}

	var hbuf [headerSize]byte
	if _, err := f.ReadAt(hbuf[:], 0); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	hdr, err := decodeHeader(hbuf[:])
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}

	var fbuf [footerSize]byte
	if _, err := f.ReadAt(fbuf[:], size-footerSize); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	ft, err := decodeFooter(fbuf[:])
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if ft.rows != hdr.rows {
		return nil, fmt.Errorf("store: %s: footer row count %d != header %d (interrupted write?)", path, ft.rows, hdr.rows)
	}
	wantChunks := (hdr.rows + hdr.chunkRows - 1) / hdr.chunkRows
	if ft.chunks != wantChunks {
		return nil, fmt.Errorf("store: %s: %d chunks recorded, want %d for %d rows of %d", path, ft.chunks, wantChunks, hdr.rows, hdr.chunkRows)
	}
	if ft.dirOffset+int64(8*ft.chunks)+footerSize != size {
		return nil, fmt.Errorf("store: %s: directory does not reach the footer (truncated or overwritten file)", path)
	}

	dir := make([]byte, 8*ft.chunks)
	if _, err := f.ReadAt(dir, ft.dirOffset); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if crc := crc32.ChecksumIEEE(dir); crc != ft.dirCRC {
		return nil, fmt.Errorf("store: %s: directory checksum mismatch (%08x != %08x)", path, crc, ft.dirCRC)
	}
	offsets := make([]int64, ft.chunks)
	prev := int64(headerSize - 1)
	for i := range offsets {
		off := int64(binary.LittleEndian.Uint64(dir[8*i : 8*i+8]))
		if off <= prev || off+chunkHeaderSize > ft.dirOffset {
			return nil, fmt.Errorf("store: %s: chunk %d offset %d out of order or out of bounds", path, i, off)
		}
		if off%8 != 0 {
			// A format invariant, not just a corruption check: section
			// alignment is what licenses the mapped zero-copy path.
			return nil, fmt.Errorf("store: %s: chunk %d offset %d not 8-byte aligned", path, i, off)
		}
		offsets[i] = off
		prev = off
	}

	r := &Reader{
		f: f, path: path,
		hdr: *hdr, nnz: ft.nnz, chunks: ft.chunks,
		dirOffset: ft.dirOffset, offsets: offsets,
	}
	r.mm = mapFile(f, size)
	r.cur.init(r)
	return r, nil
}

// Close releases the file handle and mapping. Views handed out by
// Shard share them and become invalid.
func (r *Reader) Close() error {
	unmapFile(r.mm)
	r.mm = nil
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Path returns the file path the reader was opened from.
func (r *Reader) Path() string { return r.path }

// Len implements sgd.Samples.
func (r *Reader) Len() int { return r.hdr.rows }

// Dim implements sgd.Samples.
func (r *Reader) Dim() int { return r.hdr.dim }

// Classes returns the recorded class count (0 when the writer saw too
// many distinct labels to count).
func (r *Reader) Classes() int { return r.hdr.classes }

// Version returns the file's format version (1 or 2).
func (r *Reader) Version() int { return r.hdr.version }

// Chunks returns the number of chunks in the file.
func (r *Reader) Chunks() int { return r.chunks }

// ChunkRows returns the rows-per-chunk geometry (every chunk but the
// last holds exactly this many rows).
func (r *Reader) ChunkRows() int { return r.hdr.chunkRows }

// NNZ returns the total stored non-zeros.
func (r *Reader) NNZ() int64 { return r.nnz }

// Density returns NNZ / (rows·dim).
func (r *Reader) Density() float64 {
	return float64(r.nnz) / (float64(r.hdr.rows) * float64(r.hdr.dim))
}

// At implements sgd.Samples (the dense tier): row i scattered into a
// reused scratch buffer, valid until the next At call. It panics on
// I/O failure or corruption (see the type comment).
func (r *Reader) At(i int) ([]float64, float64) { return r.cur.at(i) }

// AtSparse implements sgd.SparseSamples: a view of row i, valid until
// an access to a different chunk. It panics on I/O failure or
// corruption (see the type comment).
func (r *Reader) AtSparse(i int) (*vec.Sparse, float64) { return r.cur.atSparse(i) }

// Shard implements engine.Sharder: an independent read-only view of
// rows [lo, hi) with its own chunk state over the shared file, so
// shards of one store can be scanned concurrently by the sharded
// engine.
func (r *Reader) Shard(lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > r.hdr.rows {
		panic(fmt.Sprintf("store: shard [%d,%d) out of bounds for %d rows", lo, hi, r.hdr.rows))
	}
	v := &view{lo: lo, hi: hi}
	v.cur.init(r)
	return v
}

// ChunkCSR loads chunk c and returns views of its CSR block:
// chunk-local indptr (indptr[0] = 0), column indices, values and
// labels. The slices are read-only and valid until the next access
// through the same Reader. Unlike At, it reports corruption as an
// error — the form the fuzz harness and batch scorers consume. The
// chunk's rows are global rows [c·ChunkRows, c·ChunkRows+len(y)).
func (r *Reader) ChunkCSR(c int) (indptr, idx []int, val, y []float64, err error) {
	if c < 0 || c >= r.chunks {
		return nil, nil, nil, nil, fmt.Errorf("store: chunk %d out of range [0,%d)", c, r.chunks)
	}
	if err := r.cur.load(c); err != nil {
		return nil, nil, nil, nil, err
	}
	return r.cur.indptr, r.cur.idx, r.cur.val, r.cur.y, nil
}

// Verify loads every chunk, validating all checksums and CSR
// invariants — the eager integrity check for a freshly converted or
// untrusted file.
func (r *Reader) Verify() error {
	for c := 0; c < r.chunks; c++ {
		if _, _, _, _, err := r.ChunkCSR(c); err != nil {
			return err
		}
	}
	return nil
}

// view is a Shard row-range restriction of a Reader with a private
// cursor, translating to parent coordinates like every other shard
// view in the repository.
type view struct {
	cur    cursor
	lo, hi int
}

func (v *view) Len() int { return v.hi - v.lo }
func (v *view) Dim() int { return v.cur.r.hdr.dim }

func (v *view) At(i int) ([]float64, float64) {
	if i < 0 || i >= v.hi-v.lo {
		panic(fmt.Sprintf("store: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.cur.at(v.lo + i)
}

func (v *view) AtSparse(i int) (*vec.Sparse, float64) {
	if i < 0 || i >= v.hi-v.lo {
		panic(fmt.Sprintf("store: shard row %d out of range [0,%d)", i, v.hi-v.lo))
	}
	return v.cur.atSparse(v.lo + i)
}

// Shard keeps views shardable in turn, translating to parent
// coordinates so sharded runs over a row-range view stay race-free.
func (v *view) Shard(lo, hi int) sgd.Samples {
	if lo < 0 || hi < lo || hi > v.hi-v.lo {
		panic(fmt.Sprintf("store: shard [%d,%d) out of bounds for %d rows", lo, hi, v.hi-v.lo))
	}
	return v.cur.r.Shard(v.lo+lo, v.lo+hi)
}

// cursor is one scanning view's chunk state. In the mapped path the
// CSR slices point straight into the file mapping; each chunk is CRC-
// and invariant-checked the first time this cursor visits it (the
// verified bitmap), after which a chunk switch is slice arithmetic
// only — zero work per row, zero allocations per chunk (gated by
// TestStoreScanAllocs). In the fallback path chunks are pread and
// decoded into the cursor's reused arenas on every switch.
type cursor struct {
	r   *Reader
	cur int // loaded chunk, -1 when none
	// lo/hi are the loaded chunk's global row range. The hot-path row
	// lookup is two compares against them (no division, no bounds
	// re-check); lo = hi = 0 while no chunk is valid, which routes
	// every access through the checked slow path.
	lo, hi int

	verified []bool // mapped path: chunks already CRC/invariant-checked

	indptr []int
	idx    []int
	val    []float64
	y      []float64

	raw    []byte    // fallback payload buffer
	yArena []float64 // label remap buffer (FlagLabels01, mapped path)

	scratch []float64 // dense At tier, allocated on first use
	row     vec.Sparse
}

func (c *cursor) init(r *Reader) {
	c.r = r
	c.cur = -1
	if r.mm != nil {
		c.verified = make([]bool, r.chunks)
	}
}

// chunkGeom reads and validates chunk n's header, returning its row
// count, nnz, payload length and CRC.
func (c *cursor) chunkGeom(n int, hbuf []byte) (rows, nnz, plen int, crc uint32, err error) {
	r := c.r
	rows = int(binary.LittleEndian.Uint32(hbuf[0:4]))
	nnz = int(binary.LittleEndian.Uint32(hbuf[4:8]))
	plen = int(binary.LittleEndian.Uint32(hbuf[8:12]))
	crc = binary.LittleEndian.Uint32(hbuf[12:16])

	wantRows := r.hdr.chunkRows
	if n == r.chunks-1 {
		wantRows = r.hdr.rows - (r.chunks-1)*r.hdr.chunkRows
	}
	if rows != wantRows {
		return 0, 0, 0, 0, fmt.Errorf("store: %s: chunk %d holds %d rows, want %d", r.path, n, rows, wantRows)
	}
	if !plenConsistent(r.hdr.version, rows, nnz, plen) {
		return 0, 0, 0, 0, fmt.Errorf("store: %s: chunk %d payload length %d inconsistent with %d rows / %d nnz", r.path, n, plen, rows, nnz)
	}
	if r.offsets[n]+chunkHeaderSize+int64(plen) > r.dirOffset {
		return 0, 0, 0, 0, fmt.Errorf("store: %s: chunk %d payload overruns the directory", r.path, n)
	}
	return rows, nnz, plen, crc, nil
}

// validateCSR checks the decoded (or aliased) CSR block's invariants:
// indptr monotone from 0 to nnz, indices in [0, dim) and strictly
// increasing within each row.
func (c *cursor) validateCSR(n, rows, nnz int, indptr, idx []int) error {
	r := c.r
	prev := 0
	for i, v := range indptr {
		if (i == 0 && v != 0) || v < prev || v > nnz {
			return fmt.Errorf("store: %s: chunk %d: corrupt row index at %d", r.path, n, i)
		}
		prev = v
	}
	if prev != nnz {
		return fmt.Errorf("store: %s: chunk %d: row index does not cover %d non-zeros", r.path, n, nnz)
	}
	for row := 0; row < rows; row++ {
		p := -1
		for k := indptr[row]; k < indptr[row+1]; k++ {
			v := idx[k]
			if v <= p || v >= r.hdr.dim {
				return fmt.Errorf("store: %s: chunk %d: row %d columns out of range or not strictly increasing", r.path, n, row)
			}
			p = v
		}
	}
	return nil
}

// decodeIndexV2 decodes a version-2 payload's varint index sections
// (everything past the raw val/y prefix) into the cursor's reused
// indptr/idx arenas. Structural validation is built into the decode and
// runs on every visit, fail-closed: a truncated or over-long varint, a
// row-length sum ≠ nnz, a zero column gap, an index ≥ dim, leftover
// bytes or a non-zero pad byte are all corruption errors — the decode
// succeeding implies every invariant validateCSR checks.
func (c *cursor) decodeIndexV2(n, rows, nnz int, p []byte) error {
	r := c.r
	corrupt := func(what string) error {
		return fmt.Errorf("store: %s: chunk %d: corrupt v2 index section (%s)", r.path, n, what)
	}
	o, end := payloadFixedV2(rows, nnz), len(p)
	// uvarint with a single-byte fast path: at realistic densities
	// almost every row length and column gap fits 7 bits, and this
	// decode runs on every chunk switch — it IS the v2 read path.
	uvarint := func() (uint64, bool) {
		if o < end {
			if v := p[o]; v < 0x80 {
				o++
				return uint64(v), true
			}
		}
		v, k := binary.Uvarint(p[o:end])
		if k <= 0 {
			return 0, false
		}
		o += k
		return v, true
	}
	if cap(c.indptr) < rows+1 {
		c.indptr = make([]int, rows+1)
	}
	c.indptr = c.indptr[:rows+1]
	c.indptr[0] = 0
	sum := 0
	for i := 1; i <= rows; i++ {
		v, ok := uvarint()
		if !ok {
			return corrupt("truncated row length")
		}
		if v > uint64(nnz-sum) {
			return corrupt("row lengths exceed nnz")
		}
		sum += int(v)
		c.indptr[i] = sum
	}
	if sum != nnz {
		return corrupt("row lengths do not cover nnz")
	}
	if cap(c.idx) < nnz {
		c.idx = make([]int, nnz)
	}
	c.idx = c.idx[:nnz]
	dim := uint64(r.hdr.dim)
	for row := 0; row < rows; row++ {
		lo, hi := c.indptr[row], c.indptr[row+1]
		var prev uint64
		for k := lo; k < hi; k++ {
			v, ok := uvarint()
			if !ok {
				return corrupt("truncated column index")
			}
			col := v
			if k > lo {
				if v == 0 {
					return corrupt("zero column gap")
				}
				if v >= dim { // a gap of ≥ dim always overshoots; checking
					// first also keeps prev+v from overflowing uint64
					return corrupt("column gap out of range")
				}
				col = prev + v
			}
			if col >= dim {
				return corrupt("column index out of range")
			}
			c.idx[k] = int(col)
			prev = col
		}
	}
	if end-o >= 8 {
		return corrupt("trailing bytes after index sections")
	}
	for _, pad := range p[o:end] {
		if pad != 0 {
			return corrupt("non-zero pad byte")
		}
	}
	return nil
}

// load makes chunk n current.
func (c *cursor) load(n int) error {
	if c.cur == n {
		return nil
	}
	r := c.r
	if r.mm != nil {
		return c.loadMapped(n)
	}
	return c.loadArena(n)
}

// loadMapped serves chunk n out of the file mapping. For version-1
// files the CSR slices alias the mapping, with CRC and CSR invariants
// checked on this cursor's first visit and pure slice arithmetic after
// that. Version-2 index sections are varint-encoded and cannot alias:
// they are decoded into the cursor's reused arenas on every chunk
// switch (the decode is itself the structural validation), while val/y
// still alias the mapping.
func (c *cursor) loadMapped(n int) error {
	r := c.r
	off := r.offsets[n]
	hbuf := r.mm[off : off+chunkHeaderSize]
	rows, nnz, plen, crc, err := c.chunkGeom(n, hbuf)
	if err != nil {
		return err
	}
	p := r.mm[off+chunkHeaderSize : off+chunkHeaderSize+int64(plen)]
	if !c.verified[n] {
		if got := crc32.ChecksumIEEE(p); got != crc {
			return fmt.Errorf("store: %s: chunk %d checksum mismatch (%08x != %08x)", r.path, n, got, crc)
		}
	}
	if r.hdr.version == formatV2 {
		// Invalidate before decoding into the shared arenas so a failed
		// decode can never be served.
		c.cur = -1
		c.lo, c.hi = 0, 0
		if err := c.decodeIndexV2(n, rows, nnz, p); err != nil {
			return err
		}
	} else {
		indptr := asInt(p[8*(nnz+rows) : 8*(nnz+rows+rows+1)])
		idx := asInt(p[8*(nnz+rows+rows+1):])
		if !c.verified[n] {
			if err := c.validateCSR(n, rows, nnz, indptr, idx); err != nil {
				return err
			}
		}
		c.indptr, c.idx = indptr, idx
	}
	c.verified[n] = true
	c.val = asF64(p[:8*nnz])
	yB := p[8*nnz : 8*(nnz+rows)]
	if r.hdr.flags&FlagLabels01 != 0 {
		// The mapping is read-only, so remapped labels need the one
		// copied section: rows (not nnz) elements, reused across loads.
		if cap(c.yArena) < rows {
			c.yArena = make([]float64, rows)
		}
		c.yArena = c.yArena[:rows]
		for i, v := range asF64(yB) {
			c.yArena[i] = 2*v - 1
		}
		c.y = c.yArena
	} else {
		c.y = asF64(yB)
	}
	c.cur = n
	c.lo = n * r.hdr.chunkRows
	c.hi = c.lo + rows
	return nil
}

// loadArena is the portable fallback: pread chunk n and decode it into
// the cursor's reused arenas, validating CRC and invariants on every
// load.
func (c *cursor) loadArena(n int) error {
	r := c.r
	var hbuf [chunkHeaderSize]byte
	if _, err := r.f.ReadAt(hbuf[:], r.offsets[n]); err != nil {
		return fmt.Errorf("store: %s: chunk %d: %w", r.path, n, err)
	}
	rows, nnz, plen, crc, err := c.chunkGeom(n, hbuf[:])
	if err != nil {
		return err
	}
	if cap(c.raw) < plen {
		c.raw = make([]byte, plen)
	}
	p := c.raw[:plen]
	if _, err := r.f.ReadAt(p, r.offsets[n]+chunkHeaderSize); err != nil {
		return fmt.Errorf("store: %s: chunk %d: %w", r.path, n, err)
	}
	if got := crc32.ChecksumIEEE(p); got != crc {
		return fmt.Errorf("store: %s: chunk %d checksum mismatch (%08x != %08x)", r.path, n, got, crc)
	}

	// Invalidate before decoding so a failed load can never be served.
	c.cur = -1
	c.lo, c.hi = 0, 0
	if cap(c.val) < nnz {
		c.val = make([]float64, nnz)
	}
	c.val = c.val[:nnz]
	o := 0
	for i := 0; i < nnz; i++ {
		c.val[i] = getF64(p, o)
		o += 8
	}
	if cap(c.y) < rows {
		c.y = make([]float64, rows)
	}
	c.y = c.y[:rows]
	remap := r.hdr.flags&FlagLabels01 != 0
	for i := 0; i < rows; i++ {
		yv := getF64(p, o)
		if remap {
			yv = 2*yv - 1
		}
		c.y[i] = yv
		o += 8
	}
	if r.hdr.version == formatV2 {
		if err := c.decodeIndexV2(n, rows, nnz, p); err != nil {
			return err
		}
	} else {
		if cap(c.indptr) < rows+1 {
			c.indptr = make([]int, rows+1)
		}
		c.indptr = c.indptr[:rows+1]
		for i := 0; i <= rows; i++ {
			c.indptr[i] = int(binary.LittleEndian.Uint64(p[o : o+8]))
			o += 8
		}
		if cap(c.idx) < nnz {
			c.idx = make([]int, nnz)
		}
		c.idx = c.idx[:nnz]
		for i := 0; i < nnz; i++ {
			c.idx[i] = int(binary.LittleEndian.Uint64(p[o : o+8]))
			o += 8
		}
		if err := c.validateCSR(n, rows, nnz, c.indptr, c.idx); err != nil {
			return err
		}
	}
	c.cur = n
	c.lo = n * r.hdr.chunkRows
	c.hi = c.lo + rows
	return nil
}

// locate maps global row i to its row-in-chunk. The fast path — row
// inside the loaded chunk — is two compares and a subtraction, so
// sequential scans pay no per-row arithmetic beyond them; chunk
// switches go through locateSlow.
func (c *cursor) locate(i int) int {
	if i >= c.lo && i < c.hi {
		return i - c.lo
	}
	return c.locateSlow(i)
}

func (c *cursor) locateSlow(i int) int {
	r := c.r
	if i < 0 || i >= r.hdr.rows {
		panic(fmt.Sprintf("store: row %d out of range [0,%d)", i, r.hdr.rows))
	}
	if err := c.load(i / r.hdr.chunkRows); err != nil {
		panic(err)
	}
	return i - c.lo
}

func (c *cursor) atSparse(i int) (*vec.Sparse, float64) {
	j := c.locate(i)
	lo, hi := c.indptr[j], c.indptr[j+1]
	c.row.Idx = c.idx[lo:hi]
	c.row.Val = c.val[lo:hi]
	return &c.row, c.y[j]
}

func (c *cursor) at(i int) ([]float64, float64) {
	j := c.locate(i)
	if c.scratch == nil {
		c.scratch = make([]float64, c.r.hdr.dim)
	}
	for k := range c.scratch {
		c.scratch[k] = 0
	}
	for k := c.indptr[j]; k < c.indptr[j+1]; k++ {
		c.scratch[c.idx[k]] = c.val[k]
	}
	return c.scratch, c.y[j]
}
