package store_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/vec"
)

// appendSlice ingests rows [lo, hi) of ds as one segment of dir.
func appendSlice(t *testing.T, dir string, ds *data.SparseDataset, lo, hi int, opt store.Options) string {
	t.Helper()
	name, err := store.AppendSegment(dir, ds.Shard(lo, hi).(sgd.SparseSamples), opt)
	if err != nil {
		t.Fatalf("AppendSegment [%d,%d): %v", lo, hi, err)
	}
	return name
}

func openDir(t *testing.T, dir string) *store.Dir {
	t.Helper()
	d, err := store.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestSegmentDirRoundTrip pins the union contract: a directory of
// segments serves, row for row and bit for bit, the concatenation of
// what was ingested — both access tiers, plus the eager Verify sweep.
func TestSegmentDirRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ds := data.SparseSynthetic(r, 301, 90, 9, 0.05)
	dir := t.TempDir()
	for _, cut := range [][2]int{{0, 100}, {100, 130}, {130, 301}} {
		appendSlice(t, dir, ds, cut[0], cut[1], store.Options{ChunkRows: 64})
	}
	d := openDir(t, dir)
	if d.Segments() != 3 {
		t.Fatalf("Segments = %d, want 3", d.Segments())
	}
	if d.Len() != ds.Len() || d.Dim() != ds.Dim() || d.Classes() != 2 {
		t.Fatalf("union shape (%d,%d,%d) != (%d,%d,2)", d.Len(), d.Dim(), d.Classes(), ds.Len(), ds.Dim())
	}
	if int(d.NNZ()) != ds.NNZ() {
		t.Fatalf("NNZ %d != %d", d.NNZ(), ds.NNZ())
	}
	for i := 0; i < ds.Len(); i++ {
		want, wy := ds.AtSparse(i)
		got, gy := d.AtSparse(i)
		if gy != wy || len(got.Idx) != len(want.Idx) {
			t.Fatalf("row %d: shape/label mismatch", i)
		}
		for k := range want.Idx {
			if got.Idx[k] != want.Idx[k] || math.Float64bits(got.Val[k]) != math.Float64bits(want.Val[k]) {
				t.Fatalf("row %d coordinate %d differs", i, k)
			}
		}
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestSegmentDirShardViews pins the engine.Sharder contract across
// segment boundaries: shard views agree with the union reader and can
// be re-sharded.
func TestSegmentDirShardViews(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ds := data.SparseSynthetic(r, 200, 60, 7, 0.05)
	dir := t.TempDir()
	appendSlice(t, dir, ds, 0, 80, store.Options{})
	appendSlice(t, dir, ds, 80, 200, store.Options{})
	d := openDir(t, dir)
	v := d.Shard(50, 150) // spans the segment boundary
	if v.Len() != 100 {
		t.Fatalf("shard Len = %d, want 100", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		want, wy := d.AtSparse(50 + i)
		got, gy := v.(sgd.SparseSamples).AtSparse(i)
		if gy != wy || len(got.Idx) != len(want.Idx) {
			t.Fatalf("shard row %d mismatch", i)
		}
	}
	nested := v.(engine.Sharder).Shard(25, 75)
	x, y := nested.At(0)
	wx, wy := d.At(75)
	if y != wy || len(x) != len(wx) {
		t.Fatalf("nested shard row 0 mismatch")
	}
}

// TestSegmentDirTrainingParity pins the tentpole invariant one level
// up from TestStoreTrainingParity: training from a segment directory
// is bit-identical to training from the in-memory dataset, under every
// execution strategy — and a single-segment directory is bit-identical
// to the plain single-file store it wraps.
func TestSegmentDirTrainingParity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ds, _ := data.KDDSimSparse(r, 0.003)
	base := t.TempDir()

	// Single-file store (the old -cache behavior)…
	rd := openStore(t, writeStore(t, base, ds, store.Options{ChunkRows: 256}))
	// …a single-segment directory…
	oneDir := filepath.Join(base, "one")
	appendSlice(t, oneDir, ds, 0, ds.Len(), store.Options{ChunkRows: 256})
	one := openDir(t, oneDir)
	// …and a three-segment directory of the same rows.
	threeDir := filepath.Join(base, "three")
	third := ds.Len() / 3
	appendSlice(t, threeDir, ds, 0, third, store.Options{ChunkRows: 256})
	appendSlice(t, threeDir, ds, third, 2*third, store.Options{ChunkRows: 256})
	appendSlice(t, threeDir, ds, 2*third, ds.Len(), store.Options{ChunkRows: 256})
	three := openDir(t, threeDir)

	f := loss.NewLogistic(1e-2, 0)
	cases := []struct {
		name   string
		cfg    engine.Config
		passes int
	}{
		{name: "sequential", cfg: engine.Config{Strategy: engine.Sequential}, passes: 2},
		{name: "sharded-4", cfg: engine.Config{Strategy: engine.Sharded, Workers: 4}, passes: 2},
		{name: "streaming", cfg: engine.Config{Strategy: engine.Streaming}, passes: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(s sgd.Samples) []float64 {
				cfg := tc.cfg
				cfg.SGD = sgd.Config{Loss: f, Step: sgd.InvSqrtT(1), Radius: 100, Passes: tc.passes}
				if tc.cfg.Strategy != engine.Streaming {
					cfg.SGD.Rand = rand.New(rand.NewSource(5))
				}
				res, err := engine.Run(s, cfg)
				if err != nil {
					t.Fatalf("engine.Run: %v", err)
				}
				return res.W
			}
			mem := run(ds)
			bitsEqual(t, "single-file", run(rd), mem)
			bitsEqual(t, "one-segment dir", run(one), mem)
			bitsEqual(t, "three-segment dir", run(three), mem)
		})
	}
}

// TestCompactParity pins the compaction acceptance criterion: training
// from a compacted directory is bit-identical to the uncompacted
// union, for all three strategies, and the compacted directory still
// passes the full Verify sweep.
func TestCompactParity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ds, _ := data.KDDSimSparse(r, 0.003)
	dir := t.TempDir()
	// Five uneven segments, several below the compaction threshold.
	cuts := []int{0, 40, 90, 150, 170, ds.Len()}
	for i := 0; i+1 < len(cuts); i++ {
		appendSlice(t, dir, ds, cuts[i], cuts[i+1], store.Options{ChunkRows: 64})
	}

	f := loss.NewLogistic(1e-2, 0)
	train := func(d *store.Dir, strat engine.Strategy, workers, passes int) []float64 {
		cfg := engine.Config{Strategy: strat, Workers: workers}
		cfg.SGD = sgd.Config{Loss: f, Step: sgd.InvSqrtT(1), Radius: 100, Passes: passes}
		if strat != engine.Streaming {
			cfg.SGD.Rand = rand.New(rand.NewSource(9))
		}
		res, err := engine.Run(d, cfg)
		if err != nil {
			t.Fatalf("engine.Run: %v", err)
		}
		return res.W
	}

	d := openDir(t, dir)
	beforeSeq := train(d, engine.Sequential, 0, 2)
	beforeShard := train(d, engine.Sharded, 4, 2)
	beforeStream := train(d, engine.Streaming, 0, 1)

	nb, na, err := store.Compact(dir, 200)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if nb != 5 || na >= nb {
		t.Fatalf("Compact: %d → %d segments, want fewer than 5", nb, na)
	}
	if err := d.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if d.Len() != ds.Len() {
		t.Fatalf("post-compaction Len %d != %d", d.Len(), ds.Len())
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("post-compaction Verify: %v", err)
	}
	bitsEqual(t, "sequential", train(d, engine.Sequential, 0, 2), beforeSeq)
	bitsEqual(t, "sharded-4", train(d, engine.Sharded, 4, 2), beforeShard)
	bitsEqual(t, "streaming", train(d, engine.Streaming, 0, 1), beforeStream)

	// Compact-everything leaves one segment and the same training.
	if _, na, err = store.Compact(dir, 0); err != nil {
		t.Fatalf("Compact(0): %v", err)
	}
	if na != 1 {
		t.Fatalf("full compaction left %d segments, want 1", na)
	}
	if err := d.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	bitsEqual(t, "sequential/full", train(d, engine.Sequential, 0, 2), beforeSeq)
}

// memRows is a hand-built sparse source for invariant-violation tests.
type memRows struct {
	dim int
	xs  []*vec.Sparse
	ys  []float64
}

func (m *memRows) Len() int { return len(m.ys) }
func (m *memRows) Dim() int { return m.dim }
func (m *memRows) At(i int) ([]float64, float64) {
	x := make([]float64, m.dim)
	m.xs[i].Scatter(x)
	return x, m.ys[i]
}
func (m *memRows) AtSparse(i int) (*vec.Sparse, float64) { return m.xs[i], m.ys[i] }

// TestAppendSegmentFailClosed pins the visibility contract: a segment
// that violates any ingest invariant — dimension, label set, density,
// emptiness — is rejected before it joins the manifest, and the
// directory afterwards is byte-identical to the directory before.
func TestAppendSegmentFailClosed(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ds := data.SparseSynthetic(r, 120, 100, 30, 0.05) // density 0.3
	dir := t.TempDir()
	appendSlice(t, dir, ds, 0, 120, store.Options{})
	manifest := filepath.Join(dir, "MANIFEST")
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	entries := func() int {
		ents, _ := os.ReadDir(dir)
		return len(ents)
	}
	nfiles := entries()

	row := func(idx []int, val []float64) *vec.Sparse { return &vec.Sparse{Idx: idx, Val: val} }
	cases := []struct {
		name string
		src  sgd.SparseSamples
		want string
	}{
		{
			name: "dim widens",
			src: &memRows{dim: 150, xs: []*vec.Sparse{row([]int{0, 149}, []float64{1, 1})},
				ys: []float64{1}},
			want: "dim",
		},
		{
			name: "label set grows",
			src: &memRows{dim: 100,
				xs: repeatRows(row([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29},
					ones(30)), 3),
				ys: []float64{-1, 1, 7}},
			want: "classes",
		},
		{
			name: "density collapses",
			src: &memRows{dim: 100, xs: repeatRows(row([]int{3}, []float64{1}), 4),
				ys: []float64{1, -1, 1, -1}},
			want: "density",
		},
		{
			name: "empty segment",
			src:  &memRows{dim: 100},
			want: "no examples", // Writer.Close's own zero-row refusal
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := store.AppendSegment(dir, tc.src, store.Options{}); err == nil {
				t.Fatalf("append accepted a segment violating the %s invariant", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			after, err := os.ReadFile(manifest)
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(before) {
				t.Fatal("manifest changed after a rejected append")
			}
			if entries() != nfiles {
				t.Fatal("rejected append left files behind")
			}
		})
	}
}

func repeatRows(x *vec.Sparse, n int) []*vec.Sparse {
	out := make([]*vec.Sparse, n)
	for i := range out {
		out[i] = x
	}
	return out
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// TestSegmentDirFailClosed pins corruption handling: a flipped bit in
// the manifest fails OpenDir; a flipped bit in a segment payload fails
// the Verify sweep (structural opens stay lazy, exactly like Open).
func TestSegmentDirFailClosed(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	ds := data.SparseSynthetic(r, 100, 60, 7, 0.05)

	t.Run("manifest corruption", func(t *testing.T) {
		dir := t.TempDir()
		appendSlice(t, dir, ds, 0, 100, store.Options{})
		path := filepath.Join(dir, "MANIFEST")
		raw, _ := os.ReadFile(path)
		raw[len(raw)/3] ^= 0x40
		os.WriteFile(path, raw, 0o644)
		if _, err := store.OpenDir(dir); err == nil {
			t.Fatal("OpenDir accepted a corrupted manifest")
		}
	})
	t.Run("segment payload corruption", func(t *testing.T) {
		dir := t.TempDir()
		name := appendSlice(t, dir, ds, 0, 100, store.Options{})
		path := filepath.Join(dir, name)
		raw, _ := os.ReadFile(path)
		raw[len(raw)/2] ^= 0x01
		os.WriteFile(path, raw, 0o644)
		d, err := store.OpenDir(dir)
		if err != nil {
			// Structural metadata happened to take the hit: still fail-closed.
			return
		}
		defer d.Close()
		if err := d.Verify(); err == nil {
			t.Fatal("Verify accepted a corrupted segment")
		}
	})
	t.Run("missing manifest", func(t *testing.T) {
		if _, err := store.OpenDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "segment directory") {
			t.Fatalf("OpenDir on an empty dir: %v", err)
		}
	})
}

// TestDirReload pins the live-handle contract: appends become visible
// through Reload without disturbing rows already open, and compaction
// folds in the same way.
func TestDirReload(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	ds := data.SparseSynthetic(r, 300, 80, 8, 0.05)
	dir := t.TempDir()
	appendSlice(t, dir, ds, 0, 100, store.Options{})
	d := openDir(t, dir)
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	appendSlice(t, dir, ds, 100, 300, store.Options{})
	if d.Len() != 100 {
		t.Fatal("append became visible without Reload")
	}
	if err := d.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if d.Len() != 300 || d.Segments() != 2 {
		t.Fatalf("post-reload (%d rows, %d segments), want (300, 2)", d.Len(), d.Segments())
	}
	x, y := d.AtSparse(250)
	wx, wy := ds.AtSparse(250)
	if y != wy || len(x.Idx) != len(wx.Idx) {
		t.Fatal("post-reload row mismatch")
	}
	if _, _, err := store.Compact(dir, 0); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := d.Reload(); err != nil {
		t.Fatalf("Reload after Compact: %v", err)
	}
	if d.Segments() != 1 || d.Len() != 300 {
		t.Fatalf("post-compaction reload (%d segments, %d rows)", d.Segments(), d.Len())
	}
}

// BenchmarkStoreIngestSegment measures AppendSegment throughput — the
// online-ingest path's cost: one streaming write pass plus the full
// fail-closed integrity sweep (Verify + invariants + file CRC).
func BenchmarkStoreIngestSegment(b *testing.B) {
	r := rand.New(rand.NewSource(71))
	ds, _ := data.KDDSimSparse(r, 0.01)
	rows := float64(ds.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), "segs")
		if _, err := store.AppendSegment(dir, ds, store.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreCompact measures the compaction pass: merging eight
// small segments into one, rows streamed in order.
func BenchmarkStoreCompact(b *testing.B) {
	r := rand.New(rand.NewSource(72))
	ds, _ := data.KDDSimSparse(r, 0.01)
	rows := float64(ds.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), "segs")
		seg := ds.Len() / 8
		for j := 0; j < 8; j++ {
			hi := (j + 1) * seg
			if j == 7 {
				hi = ds.Len()
			}
			if _, err := store.AppendSegment(dir, ds.Shard(j*seg, hi).(sgd.SparseSamples), store.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, _, err := store.Compact(dir, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
