package store_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"boltondp/internal/data"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
)

// kddBench builds the benchmark workload once per process: the KDD
// sparse simulation (d=122, ~10% density) in memory and as a store
// file, plus the single-pass training configuration both epoch
// measurements share.
type kddBench struct {
	ds   *data.SparseDataset
	path string
	rd   *store.Reader
	rdV2 *store.Reader // the same rows under the v2 delta+varint encoding
}

var kddOnce *kddBench

func kddWorkload(tb testing.TB) *kddBench {
	tb.Helper()
	if kddOnce != nil {
		return kddOnce
	}
	r := rand.New(rand.NewSource(1))
	ds, _ := data.KDDSimSparse(r, 0.1) // 54,342 train rows at scale 0.1
	dir, err := os.MkdirTemp("", "boltstore-bench")
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(dir, "kdd.bolt")
	if err := store.Write(path, ds, store.Options{}); err != nil {
		tb.Fatal(err)
	}
	rd, err := store.Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	pathV2 := filepath.Join(dir, "kdd_v2.bolt")
	if err := store.Write(pathV2, ds, store.Options{Version: 2}); err != nil {
		tb.Fatal(err)
	}
	rdV2, err := store.Open(pathV2)
	if err != nil {
		tb.Fatal(err)
	}
	kddOnce = &kddBench{ds: ds, path: path, rd: rd, rdV2: rdV2}
	return kddOnce
}

// epochCfg is the shared single-pass configuration: the streaming
// strategy's natural-order scan, the access pattern out-of-core
// training is built for.
func epochCfg() engine.Config {
	return engine.Config{
		Strategy: engine.Streaming,
		SGD: sgd.Config{
			Loss:   loss.NewLogistic(1e-2, 0),
			Step:   sgd.InvSqrtT(1),
			Passes: 1,
			Batch:  10,
			Radius: 100,
		},
	}
}

func runEpoch(tb testing.TB, s sgd.Samples) time.Duration {
	tb.Helper()
	start := time.Now()
	if _, err := engine.Run(s, epochCfg()); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkStoreEpochKDD measures one single-pass training epoch read
// straight from the store file.
func BenchmarkStoreEpochKDD(b *testing.B) {
	w := kddWorkload(b)
	rows := float64(w.rd.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch(b, w.rd)
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreEpochKDDInMemory is the in-memory baseline of the same
// epoch — the denominator of the ≤15% overhead acceptance gate.
func BenchmarkStoreEpochKDDInMemory(b *testing.B) {
	w := kddWorkload(b)
	rows := float64(w.ds.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch(b, w.ds)
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreChunkScan measures raw chunk decode throughput (read,
// CRC, validate, decode — no training arithmetic).
func BenchmarkStoreChunkScan(b *testing.B) {
	w := kddWorkload(b)
	rows := float64(w.rd.Len())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < w.rd.Chunks(); c++ {
			_, _, val, _, err := w.rd.ChunkCSR(c)
			if err != nil {
				b.Fatal(err)
			}
			sink += val[0]
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	_ = sink
}

// BenchmarkStoreV2Scan measures raw chunk throughput under the v2
// delta+varint encoding — the decode cost the smaller file buys
// (BenchmarkStoreChunkScan is the v1 baseline).
func BenchmarkStoreV2Scan(b *testing.B) {
	w := kddWorkload(b)
	rows := float64(w.rdV2.Len())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < w.rdV2.Chunks(); c++ {
			_, _, val, _, err := w.rdV2.ChunkCSR(c)
			if err != nil {
				b.Fatal(err)
			}
			sink += val[0]
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	_ = sink
}

// BenchmarkStoreEpochKDDV2: one single-pass training epoch read from
// the v2-encoded store — the end-to-end cost of the compressed format.
func BenchmarkStoreEpochKDDV2(b *testing.B) {
	w := kddWorkload(b)
	rows := float64(w.rdV2.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEpoch(b, w.rdV2)
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkStoreWriteKDD measures the one-pass conversion throughput
// (the `dpsgd -cache` path's cost).
func BenchmarkStoreWriteKDD(b *testing.B) {
	w := kddWorkload(b)
	dir := b.TempDir()
	rows := float64(w.ds.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Write(filepath.Join(dir, "w.bolt"), w.ds, store.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// TestStoreEpochOverhead is the acceptance gate for the out-of-core
// tier: a store-backed single-pass epoch on KDDSimSparse must run
// within 15% of the in-memory epoch. Timing-sensitive, so it is
// skipped under -race and -short (like the sparse kernel's ctx
// overhead gate); CI runs it in the store benchmark smoke step.
func TestStoreEpochOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate is meaningless under -race")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	w := kddWorkload(t)

	// Warm both paths (page cache, arenas, branch predictors), then
	// take the minimum of alternating runs: the minimum is the cleanest
	// estimator of the true cost under CI scheduling noise.
	runEpoch(t, w.ds)
	runEpoch(t, w.rd)
	const rounds = 7
	mem, disk := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := runEpoch(t, w.ds); d < mem {
			mem = d
		}
		if d := runEpoch(t, w.rd); d < disk {
			disk = d
		}
	}
	ratio := float64(disk) / float64(mem)
	t.Logf("epoch: in-memory %v, store-backed %v, ratio %.3f", mem, disk, ratio)
	if ratio > 1.15 {
		t.Fatalf("store-backed epoch is %.1f%% slower than in-memory, budget is 15%%", (ratio-1)*100)
	}
}
