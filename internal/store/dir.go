package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

// Segment directory: the append-only tier of the store (DESIGN.md §12).
//
// A segment directory holds a set of immutable store files ("segments",
// each a complete v1/v2 store file written by Writer) plus a CRC'd
// MANIFEST that lists them in ingestion order. The union of the
// segments, in manifest order, is one logical dataset: OpenDir exposes
// it behind the same sgd.Samples / sgd.SparseSamples / engine.Sharder
// contract a single Reader satisfies, so every execution strategy
// trains from a directory exactly as it trains from a file.
//
// Visibility is manifest membership: AppendSegment writes the new
// segment to a temp name, re-opens it and runs the full fail-closed
// integrity check (structural CRCs via Open, every chunk CRC via
// Verify, and the dimension / label-set / density invariants against
// the union), and only then renames it into place and rewrites the
// manifest. A segment that fails any check is deleted, the manifest is
// untouched, and no reader can ever observe the rejected rows — the
// deductive-database reading of integrity constraints: an update that
// would violate a constraint is refused, not repaired.
//
// Segments are immutable once visible; Compact replaces runs of small
// adjacent segments with their merged equivalent, preserving global
// row order so training from the compacted directory is bit-identical
// to the uncompacted union (pinned for all three strategies).

// manifestName is the manifest file inside a segment directory.
const manifestName = "MANIFEST"

// manifestMagic is the manifest's first line: format name and version.
const manifestMagic = "boltondp-segdir 1"

// maxDensityRatio bounds how far an ingested segment's nonzero density
// may deviate from the union's before the append is refused: a factor
// of 16 either way. A bigger swing is, in every workload this store
// serves, a pipeline bug (wrong file, wrong columns, truncated values)
// rather than drift — drift at that magnitude shows up in the drift
// detector's label-rate and margin statistics long before it moves
// aggregate density this far.
const maxDensityRatio = 16.0

// segEntry is one manifest line: an immutable segment and the totals
// it was ingested with. CRC is the IEEE CRC32 of the entire segment
// file at ingestion time — Dir.Verify checks it, and it pins the file
// identity beyond the (rows, nnz) totals that OpenDir cross-checks.
type segEntry struct {
	Name string
	Rows int
	NNZ  int64
	CRC  uint32
}

// readManifest reads and CRC-verifies dir's manifest. A missing
// manifest returns os.ErrNotExist (an empty or not-yet-initialized
// directory); any other defect fails closed.
func readManifest(dir string) ([]segEntry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	// The trailer line authenticates everything before it.
	i := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n')
	if i < 0 {
		return nil, fmt.Errorf("store: %s/%s: missing crc trailer", dir, manifestName)
	}
	body, trailer := raw[:i+1], strings.TrimSpace(string(raw[i+1:]))
	var want uint32
	if _, err := fmt.Sscanf(trailer, "crc %08x", &want); err != nil {
		return nil, fmt.Errorf("store: %s/%s: bad crc trailer %q", dir, manifestName, trailer)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("store: %s/%s: crc mismatch (manifest %08x, content %08x)", dir, manifestName, want, got)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	if !sc.Scan() || sc.Text() != manifestMagic {
		return nil, fmt.Errorf("store: %s/%s: bad magic line", dir, manifestName)
	}
	var ents []segEntry
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e segEntry
		if _, err := fmt.Sscanf(line, "seg %s %d %d %08x", &e.Name, &e.Rows, &e.NNZ, &e.CRC); err != nil {
			return nil, fmt.Errorf("store: %s/%s: bad entry %q", dir, manifestName, line)
		}
		if e.Name != filepath.Base(e.Name) || e.Rows < 0 || e.NNZ < 0 {
			return nil, fmt.Errorf("store: %s/%s: invalid entry %q", dir, manifestName, line)
		}
		ents = append(ents, e)
	}
	return ents, sc.Err()
}

// writeManifest atomically replaces dir's manifest (same-directory
// temp + rename, the registry's persistence idiom) with one listing
// ents in order, CRC-trailed.
func writeManifest(dir string, ents []segEntry) error {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic + "\n")
	for _, e := range ents {
		fmt.Fprintf(&buf, "seg %s %d %d %08x\n", e.Name, e.Rows, e.NNZ, e.CRC)
	}
	fmt.Fprintf(&buf, "crc %08x\n", crc32.ChecksumIEEE(buf.Bytes()))
	f, err := os.CreateTemp(dir, manifestName+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// fileCRC32 returns the IEEE CRC32 of the whole file at path.
func fileCRC32(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// nextSegName picks the next segment file name: seg-%06d.seg, one past
// the highest sequence number in ents (names are never reused while
// referenced, so a compacted directory keeps monotone provenance).
func nextSegName(dir string, ents []segEntry) string {
	seq := 0
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name, "seg-%06d.seg", &n); err == nil && n > seq {
			seq = n
		}
	}
	for {
		seq++
		name := fmt.Sprintf("seg-%06d.seg", seq)
		if _, err := os.Stat(filepath.Join(dir, name)); os.IsNotExist(err) {
			return name
		}
	}
}

// Dir is the union reader over a segment directory: one logical
// dataset spanning every segment the manifest lists, in order. It
// implements sgd.Samples, sgd.SparseSamples and engine.Sharder, so it
// drops into every execution strategy (and the facade's TrainCtx)
// exactly where a single-file Reader does.
//
// Like Reader, the root Dir's At/AtSparse share per-segment cursors
// and are single-goroutine; Shard returns independent views backed by
// fresh cursors for concurrent strategies.
type Dir struct {
	dir  string
	ents []segEntry
	segs []*Reader
	offs []int // offs[i] = global row index of segs[i]'s first row; len = len(segs)+1

	dim     int
	classes int
	nnz     int64
}

// OpenDir opens the segment directory at dir: the manifest is CRC-
// verified, every listed segment is opened (structural header / footer
// / directory CRCs checked by Open) and cross-checked against its
// manifest totals, and the dimension / class-count invariants are
// enforced across segments. Chunk payload CRCs stay lazy, as with
// Open; Verify forces them all.
func OpenDir(dir string) (*Dir, error) {
	ents, err := readManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s is not a segment directory (no %s); ingest with AppendSegment first", dir, manifestName)
		}
		return nil, err
	}
	d := &Dir{dir: dir, ents: ents}
	if err := d.open(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// open opens every manifest entry and rebuilds the union index.
// d.segs may hold already-open readers from a previous load; matching
// prefix entries are reused (segments are immutable), the rest are
// opened fresh.
func (d *Dir) open() error {
	segs := make([]*Reader, 0, len(d.ents))
	for i, e := range d.ents {
		var r *Reader
		if i < len(d.segs) && d.segs[i] != nil && filepath.Base(d.segs[i].Path()) == e.Name {
			r = d.segs[i] // immutable, still listed: reuse the open reader
		} else {
			var err error
			r, err = Open(filepath.Join(d.dir, e.Name))
			if err != nil {
				return fmt.Errorf("store: segment %s: %w", e.Name, err)
			}
		}
		if r.Len() != e.Rows || r.NNZ() != e.NNZ {
			if i >= len(d.segs) || d.segs[i] != r {
				r.Close()
			}
			return fmt.Errorf("store: segment %s holds %d rows / %d nnz, manifest says %d / %d",
				e.Name, r.Len(), r.NNZ(), e.Rows, e.NNZ)
		}
		segs = append(segs, r)
	}
	// Close readers the new manifest no longer references (compaction).
	for i, old := range d.segs {
		if old == nil {
			continue
		}
		kept := i < len(segs) && segs[i] == old
		if !kept {
			old.Close()
		}
	}
	d.segs = segs
	d.offs = make([]int, len(segs)+1)
	d.dim, d.classes, d.nnz = 0, 0, 0
	for i, r := range segs {
		d.offs[i+1] = d.offs[i] + r.Len()
		d.nnz += r.NNZ()
		if i == 0 {
			d.dim, d.classes = r.Dim(), r.Classes()
			continue
		}
		if r.Dim() != d.dim {
			return fmt.Errorf("store: segment %s has dim %d, directory has %d", d.ents[i].Name, r.Dim(), d.dim)
		}
		if r.Classes() != d.classes {
			return fmt.Errorf("store: segment %s has %d classes, directory has %d", d.ents[i].Name, r.Classes(), d.classes)
		}
	}
	return nil
}

// Reload re-reads the manifest and folds in whatever changed: appended
// segments are opened (existing readers are reused — segments are
// immutable), segments dropped by compaction are closed. Call it after
// AppendSegment or Compact on a directory this handle has open.
func (d *Dir) Reload() error {
	ents, err := readManifest(d.dir)
	if err != nil {
		return err
	}
	d.ents = ents
	return d.open()
}

// Close releases every open segment.
func (d *Dir) Close() error {
	var first error
	for _, r := range d.segs {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.segs = nil
	return first
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.dir }

// Len implements sgd.Samples: total rows across segments.
func (d *Dir) Len() int { return d.offs[len(d.offs)-1] }

// Dim implements sgd.Samples.
func (d *Dir) Dim() int { return d.dim }

// Classes returns the distinct-label count shared by every segment.
func (d *Dir) Classes() int { return d.classes }

// NNZ returns the total stored nonzeros.
func (d *Dir) NNZ() int64 { return d.nnz }

// Density returns nnz / (rows · dim) for the union.
func (d *Dir) Density() float64 {
	if d.Len() == 0 || d.dim == 0 {
		return 0
	}
	return float64(d.nnz) / (float64(d.Len()) * float64(d.dim))
}

// Segments returns the number of segments the union spans.
func (d *Dir) Segments() int { return len(d.segs) }

// SegmentNames returns the manifest's segment file names, in order.
func (d *Dir) SegmentNames() []string {
	names := make([]string, len(d.ents))
	for i, e := range d.ents {
		names[i] = e.Name
	}
	return names
}

// locate maps a global row index to (segment, local index).
func (d *Dir) locate(i int) (int, int) {
	// sort.Search over the cumulative offsets: first segment whose end
	// exceeds i. Directories hold few segments, so this is ~2 probes.
	k := sort.Search(len(d.segs), func(k int) bool { return d.offs[k+1] > i })
	return k, i - d.offs[k]
}

// At implements sgd.Samples.
func (d *Dir) At(i int) ([]float64, float64) {
	k, j := d.locate(i)
	return d.segs[k].At(j)
}

// AtSparse implements sgd.SparseSamples.
func (d *Dir) AtSparse(i int) (*vec.Sparse, float64) {
	k, j := d.locate(i)
	return d.segs[k].AtSparse(j)
}

// Shard implements engine.Sharder: an independent [lo, hi) view backed
// by fresh per-segment cursors, safe to use concurrently with other
// shards (the contract the sharded strategy relies on).
func (d *Dir) Shard(lo, hi int) sgd.Samples {
	v := &dirView{d: d, lo: lo, hi: hi}
	for k, r := range d.segs {
		slo, shi := max(lo, d.offs[k]), min(hi, d.offs[k+1])
		if slo >= shi {
			continue
		}
		v.subs = append(v.subs, r.Shard(slo-d.offs[k], shi-d.offs[k]))
		v.ends = append(v.ends, shi-lo)
	}
	return v
}

// dirView is a [lo, hi) union view: the per-segment shard views that
// cover the range, each with its own cursor.
type dirView struct {
	d      *Dir
	lo, hi int
	subs   []sgd.Samples
	ends   []int // ends[k] = view-relative end row of subs[k]
}

func (v *dirView) Len() int { return v.hi - v.lo }
func (v *dirView) Dim() int { return v.d.dim }

func (v *dirView) locate(i int) (sgd.Samples, int) {
	k := sort.Search(len(v.ends), func(k int) bool { return v.ends[k] > i })
	start := 0
	if k > 0 {
		start = v.ends[k-1]
	}
	return v.subs[k], i - start
}

// At implements sgd.Samples.
func (v *dirView) At(i int) ([]float64, float64) {
	s, j := v.locate(i)
	return s.At(j)
}

// AtSparse implements sgd.SparseSamples: every per-segment shard view
// serves the sparse tier, so the union view does too.
func (v *dirView) AtSparse(i int) (*vec.Sparse, float64) {
	s, j := v.locate(i)
	return s.(sgd.SparseSamples).AtSparse(j)
}

// Shard implements engine.Sharder by re-sharding from the root, so
// nested shards get fresh cursors exactly like first-level ones.
func (v *dirView) Shard(lo, hi int) sgd.Samples {
	return v.d.Shard(v.lo+lo, v.lo+hi)
}

// Verify forces the full integrity check over every segment: the
// manifest-pinned whole-file CRC32 plus Reader.Verify's chunk-payload
// sweep. OpenDir leaves both lazy for the same reason Open does; call
// this for the eager fail-closed sweep.
func (d *Dir) Verify() error {
	for i, e := range d.ents {
		crc, err := fileCRC32(filepath.Join(d.dir, e.Name))
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", e.Name, err)
		}
		if crc != e.CRC {
			return fmt.Errorf("store: segment %s: file crc %08x, manifest pins %08x", e.Name, crc, e.CRC)
		}
		if err := d.segs[i].Verify(); err != nil {
			return err
		}
	}
	return nil
}

// AppendSegment streams src into a new immutable segment of the
// directory at dir, creating the directory (and its manifest) on first
// use. The segment becomes visible — joins the manifest — only after
// it passes the full fail-closed integrity check; on any failure the
// directory is exactly as before. It returns the new segment's file
// name.
func AppendSegment(dir string, src sgd.SparseSamples, opt Options) (string, error) {
	return AppendSegmentScan(dir, src.Dim(), opt, func(emit func(x *vec.Sparse, y float64) error) error {
		for i := 0; i < src.Len(); i++ {
			x, y := src.AtSparse(i)
			if err := emit(x, y); err != nil {
				return err
			}
		}
		return nil
	})
}

// AppendSegmentScan is AppendSegment for streaming sources: scan is
// invoked once and feeds rows through emit in their final order — one
// pass, O(chunk) memory, the same shape as the -cache LIBSVM
// conversion. dim, when positive, floors the recorded dimension (use
// the source's logical dimension; rows may not populate the last
// columns). Ingesting into a non-empty directory pins the dimension to
// the directory's.
func AppendSegmentScan(dir string, dim int, opt Options, scan func(emit func(x *vec.Sparse, y float64) error) error) (name string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	ents, err := readManifest(dir)
	if err != nil && !os.IsNotExist(err) {
		return "", err
	}
	// The union invariants the new segment must satisfy.
	var unionRows, unionDim, unionClasses int
	var unionNNZ int64
	if len(ents) > 0 {
		// The first segment carries the directory-wide dim/classes
		// (OpenDir enforces the cross-segment agreement).
		first, err := Open(filepath.Join(dir, ents[0].Name))
		if err != nil {
			return "", fmt.Errorf("store: segment %s: %w", ents[0].Name, err)
		}
		unionDim, unionClasses = first.Dim(), first.Classes()
		first.Close()
		for _, e := range ents {
			unionRows += e.Rows
			unionNNZ += e.NNZ
		}
	}

	name = nextSegName(dir, ents)
	tmp := filepath.Join(dir, name+".tmp")
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	w, err := Create(tmp, opt)
	if err != nil {
		return "", err
	}
	if unionDim > 0 {
		w.SetDim(unionDim)
	}
	if dim > 0 {
		w.SetDim(dim)
	}
	if err = scan(w.Append); err != nil {
		w.Abort()
		return "", err
	}
	if err = w.Close(); err != nil {
		return "", err
	}

	// Fail-closed integrity gate, on the still-invisible temp file:
	// structural CRCs (Open), every chunk payload CRC (Verify), and the
	// dim / label-set / density invariants against the union.
	r, err := Open(tmp)
	if err != nil {
		return "", err
	}
	err = func() error {
		if r.Len() == 0 {
			return errors.New("store: refusing to ingest an empty segment")
		}
		if err := r.Verify(); err != nil {
			return err
		}
		if unionRows > 0 {
			if r.Dim() != unionDim {
				return fmt.Errorf("store: segment dim %d violates the directory's %d", r.Dim(), unionDim)
			}
			if r.Classes() != unionClasses {
				return fmt.Errorf("store: segment label set has %d classes, directory has %d", r.Classes(), unionClasses)
			}
			segDen := r.Density()
			unionDen := float64(unionNNZ) / (float64(unionRows) * float64(unionDim))
			if unionDen > 0 && (segDen <= 0 || segDen > unionDen*maxDensityRatio || segDen < unionDen/maxDensityRatio) {
				return fmt.Errorf("store: segment density %.6f is more than %gx off the directory's %.6f — refusing the ingest (wrong file or truncated values?)",
					segDen, maxDensityRatio, unionDen)
			}
		}
		return nil
	}()
	rows, nnz := r.Len(), r.NNZ()
	r.Close()
	if err != nil {
		return "", err
	}
	crc, err := fileCRC32(tmp)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	// Visibility: rename into place, then commit the manifest. A crash
	// between the two leaves an unlisted (invisible) segment file that
	// the next successful append simply never references.
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if err = writeManifest(dir, append(ents, segEntry{Name: name, Rows: rows, NNZ: nnz, CRC: crc})); err != nil {
		os.Remove(filepath.Join(dir, name))
		return "", err
	}
	return name, nil
}

// Compact merges runs of small adjacent segments — each with fewer
// than minRows rows (minRows <= 0 merges everything) — into single
// segments, preserving global row order, so training from the
// compacted directory is bit-identical to the uncompacted union. The
// merged segment inherits the run's first segment's chunk size and
// format version. The manifest swap is atomic; superseded segment
// files are removed after it commits (open readers on them keep
// working — the files are immutable and a Dir.Reload folds the swap
// in). It returns the segment counts before and after.
func Compact(dir string, minRows int) (before, after int, err error) {
	ents, err := readManifest(dir)
	if err != nil {
		return 0, 0, err
	}
	before = len(ents)
	small := func(e segEntry) bool { return minRows <= 0 || e.Rows < minRows }

	var out []segEntry
	var dropped [][]segEntry
	for i := 0; i < len(ents); {
		// Extend the maximal run of small segments starting at i.
		j := i
		for j < len(ents) && small(ents[j]) {
			j++
		}
		if j-i < 2 {
			// Nothing to merge here: keep min(j+1, …) entries verbatim.
			if j == i {
				j = i + 1
			}
			out = append(out, ents[i:j]...)
			i = j
			continue
		}
		merged, err := mergeSegments(dir, ents[i:j])
		if err != nil {
			// Best effort: remove any merged files written so far for
			// abandoned runs is unnecessary — they are unlisted, hence
			// invisible; the manifest is untouched.
			return before, before, err
		}
		out = append(out, merged)
		dropped = append(dropped, ents[i:j])
		i = j
	}
	if len(dropped) == 0 {
		return before, before, nil
	}
	if err := writeManifest(dir, out); err != nil {
		return before, before, err
	}
	for _, run := range dropped {
		for _, e := range run {
			os.Remove(filepath.Join(dir, e.Name))
		}
	}
	return before, len(out), nil
}

// mergeSegments streams the rows of run (in order) into one new
// segment file and returns its manifest entry. Labels pass through the
// readers' serving form (any {0,1}→±1 remap already applied), so the
// merged segment serves bit-identical rows.
func mergeSegments(dir string, run []segEntry) (segEntry, error) {
	first, err := Open(filepath.Join(dir, run[0].Name))
	if err != nil {
		return segEntry{}, fmt.Errorf("store: segment %s: %w", run[0].Name, err)
	}
	opt := Options{ChunkRows: first.ChunkRows(), Version: first.Version()}
	dim := first.Dim()
	first.Close()

	// Merged files sort after every live segment: provenance stays
	// monotone and a crashed compaction's unlisted output never
	// collides with a live name.
	all, _ := readManifest(dir)
	name := nextSegName(dir, all)
	tmp := filepath.Join(dir, name+".tmp")
	w, err := Create(tmp, opt)
	if err != nil {
		return segEntry{}, err
	}
	w.SetDim(dim)
	for _, e := range run {
		r, err := Open(filepath.Join(dir, e.Name))
		if err != nil {
			w.Abort()
			os.Remove(tmp)
			return segEntry{}, fmt.Errorf("store: segment %s: %w", e.Name, err)
		}
		for i := 0; i < r.Len(); i++ {
			x, y := r.AtSparse(i)
			if err := w.Append(x, y); err != nil {
				r.Close()
				w.Abort()
				os.Remove(tmp)
				return segEntry{}, err
			}
		}
		r.Close()
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return segEntry{}, err
	}
	rows, nnz := w.Rows(), w.NNZ()
	crc, err := fileCRC32(tmp)
	if err != nil {
		os.Remove(tmp)
		return segEntry{}, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return segEntry{}, fmt.Errorf("store: %w", err)
	}
	return segEntry{Name: name, Rows: rows, NNZ: nnz, CRC: crc}, nil
}
