//go:build ignore

// gen.go regenerates golden_v1.bolt, the committed version-1 store
// fixture TestGoldenV1Fixture opens. Run from the repository root:
//
//	go run internal/store/testdata/gen.go
//
// It prints the canonical content CRC to paste into the test's
// goldenV1CRC constant. The fixture exists so that readers keep
// decoding historical v1 files bit-for-bit as the format grows new
// versions; it should only ever be regenerated if the fixture itself
// needs different content, never to "fix" a failing reader.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"

	"boltondp/internal/store"
	"boltondp/internal/vec"
)

func main() {
	const path = "internal/store/testdata/golden_v1.bolt"
	r := rand.New(rand.NewSource(20260808))
	w, err := store.Create(path, store.Options{ChunkRows: 32})
	if err != nil {
		panic(err)
	}
	w.SetDim(60)
	crc := crc32.NewIEEE()
	var u [8]byte
	emit := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		crc.Write(u[:])
	}
	for i := 0; i < 123; i++ {
		nnz := 1 + r.Intn(8)
		seen := map[int]bool{}
		for len(seen) < nnz {
			seen[r.Intn(60)] = true
		}
		x := &vec.Sparse{}
		for c := 0; c < 60; c++ {
			if seen[c] {
				x.Idx = append(x.Idx, c)
				x.Val = append(x.Val, r.NormFloat64())
			}
		}
		y := float64(1 - 2*(i%2))
		if err := w.Append(x, y); err != nil {
			panic(err)
		}
		emit(uint64(len(x.Idx)))
		emit(math.Float64bits(y))
		for k := range x.Idx {
			emit(uint64(x.Idx[k]))
			emit(math.Float64bits(x.Val[k]))
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("golden_v1.bolt written; goldenV1CRC = 0x%08x\n", crc.Sum32())
}
