//go:build (linux || darwin) && (amd64 || arm64)

package store

import (
	"os"
	"syscall"
	"unsafe"
)

// The mapped fast path is compiled only where it is correct: mmap'd
// little-endian hosts whose int is 64 bits, so the file's i64/f64
// sections can be served as []int and []float64 slices straight into
// the mapping. Everywhere else mapFile returns nil and the Reader
// falls back to buffered pread + explicit decode.

// mapFile maps size bytes of f read-only, or returns nil to select
// the fallback path.
func mapFile(f *os.File, size int64) []byte {
	if size <= 0 || int64(int(size)) != size {
		return nil
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return m
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(m []byte) {
	if m != nil {
		syscall.Munmap(m)
	}
}

// asF64 reinterprets an 8-aligned little-endian byte section as
// []float64 without copying. The format guarantees the alignment
// (every section is 8-byte-aligned in the file and the mapping is
// page-aligned); Open enforces it on untrusted files.
func asF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// asInt reinterprets an 8-aligned little-endian i64 byte section as
// []int (64-bit on every platform this file builds on).
func asInt(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8)
}
