// Package projection implements Gaussian random projection (paper §2,
// "Random Projection"): a random linear map T : R^d → R^p with i.i.d.
// N(0, 1/p) entries applied to every feature vector, used to lower the
// dimension of high-dimensional datasets (MNIST: 784 → 50) so that the
// d-dependent privacy noise stays small.
//
// Privacy is unaffected: T is sampled independently of the data, and
// neighboring datasets remain neighboring after the map (§2). Utility
// is approximately preserved by the Johnson–Lindenstrauss property of
// the Gaussian ensemble.
package projection

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/vec"
)

// Projector is a fixed Gaussian random projection matrix.
type Projector struct {
	// T is the p×d projection matrix with N(0, 1/p) entries.
	T *vec.Matrix
}

// New samples a projection from dimension d down to p. It panics if
// p or d is non-positive or p > d (projection must not raise the
// dimension — that would inflate the privacy noise it exists to avoid).
func New(r *rand.Rand, d, p int) *Projector {
	if d <= 0 || p <= 0 || p > d {
		panic(fmt.Sprintf("projection: invalid shape d=%d p=%d", d, p))
	}
	t := vec.NewMatrix(p, d)
	scale := 1 / math.Sqrt(float64(p))
	for i := range t.Data {
		t.Data[i] = r.NormFloat64() * scale
	}
	return &Projector{T: t}
}

// InDim returns the input dimension d.
func (p *Projector) InDim() int { return p.T.Cols }

// OutDim returns the projected dimension p.
func (p *Projector) OutDim() int { return p.T.Rows }

// Apply returns T·x as a new vector. The result is renormalized to the
// unit ball, preserving the ‖x‖ ≤ 1 preprocessing invariant the
// sensitivity analysis needs (JL keeps norms ≈ 1, but "≈" is not "≤").
func (p *Projector) Apply(x []float64) []float64 {
	out := make([]float64, p.OutDim())
	p.T.MulVec(out, x)
	if n := vec.Norm(out); n > 1 {
		vec.Scale(out, 1/n)
	}
	return out
}

// ApplyAll projects every row of xs, returning a new slice.
func (p *Projector) ApplyAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Apply(x)
	}
	return out
}
