package projection

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/vec"
)

func TestNewShapes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := New(r, 784, 50)
	if p.InDim() != 784 || p.OutDim() != 50 {
		t.Fatalf("dims %d -> %d", p.InDim(), p.OutDim())
	}
}

func TestNewPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, c := range [][2]int{{0, 1}, {5, 0}, {5, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(r, c[0], c[1])
		}()
	}
}

func TestApplyOutputInUnitBall(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := New(r, 100, 20)
	for trial := 0; trial < 200; trial++ {
		x := make([]float64, 100)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		vec.Normalize(x)
		out := p.Apply(x)
		if len(out) != 20 {
			t.Fatalf("output dim %d", len(out))
		}
		if n := vec.Norm(out); n > 1+1e-12 {
			t.Fatalf("projected norm %v > 1", n)
		}
	}
}

// Johnson–Lindenstrauss sanity: for unit x, E‖Tx‖² = ‖x‖², so the mean
// squared projected norm over many fresh projections should be close
// to 1.
func TestNormPreservationOnAverage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := make([]float64, 200)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	vec.Normalize(x)
	var sum float64
	const trials = 400
	out := make([]float64, 50)
	for i := 0; i < trials; i++ {
		p := New(r, 200, 50)
		p.T.MulVec(out, x) // raw projection, no clamp
		n := vec.Norm(out)
		sum += n * n
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.07 {
		t.Errorf("mean squared projected norm %v, want ~1", mean)
	}
}

// Distances between points are approximately preserved (the property
// that keeps classification accuracy close after projecting, §4.3).
func TestDistancePreservation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := New(r, 784, 50)
	var ratios []float64
	for trial := 0; trial < 100; trial++ {
		a := make([]float64, 784)
		b := make([]float64, 784)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		vec.Normalize(a)
		vec.Normalize(b)
		pa := make([]float64, 50)
		pb := make([]float64, 50)
		p.T.MulVec(pa, a)
		p.T.MulVec(pb, b)
		ratios = append(ratios, vec.Dist(pa, pb)/vec.Dist(a, b))
	}
	var mean float64
	for _, x := range ratios {
		mean += x
	}
	mean /= float64(len(ratios))
	if math.Abs(mean-1) > 0.15 {
		t.Errorf("mean distance ratio %v, want ~1", mean)
	}
}

func TestApplyAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := New(r, 10, 4)
	xs := make([][]float64, 7)
	for i := range xs {
		xs[i] = make([]float64, 10)
		xs[i][i] = 1
	}
	out := p.ApplyAll(xs)
	if len(out) != 7 {
		t.Fatalf("ApplyAll returned %d rows", len(out))
	}
	for _, o := range out {
		if len(o) != 4 {
			t.Fatalf("projected row dim %d", len(o))
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)), 20, 5)
	b := New(rand.New(rand.NewSource(7)), 20, 5)
	if !vec.Equal(a.T.Data, b.T.Data, 0) {
		t.Error("projection not deterministic under seed")
	}
}

// Linearity of the raw projection: T(αx + y) = αTx + Ty.
func TestLinearityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	p := New(r, 12, 5)
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := make([]float64, 12)
		y := make([]float64, 12)
		for i := range x {
			x[i] = rr.NormFloat64()
			y[i] = rr.NormFloat64()
		}
		alpha := rr.NormFloat64()
		comb := make([]float64, 12)
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		out1 := make([]float64, 5)
		p.T.MulVec(out1, comb)
		px := make([]float64, 5)
		py := make([]float64, 5)
		p.T.MulVec(px, x)
		p.T.MulVec(py, y)
		out2 := make([]float64, 5)
		for i := range out2 {
			out2[i] = alpha*px[i] + py[i]
		}
		return vec.Equal(out1, out2, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
