// Package dp implements the differential-privacy machinery of the
// paper: the output-perturbation mechanisms (Theorems 1 and 3), the
// L2-sensitivity calculus for PSGD (Corollaries 1–3, Lemmas 7–8, with
// the mini-batch improvement of §3.2.3), simple and advanced
// composition, and the ε₁ solver used by the extended BST14 baselines
// (Algorithms 4–5, line 5).
//
// The sensitivity functions are pure functions of the loss constants
// (L, β, γ) and the run shape (k passes, m examples, batch b, step
// size); they are unit-tested against the closed forms in the paper and
// property-tested against brute-force pairwise SGD runs on neighboring
// datasets (the empirical ‖A(r;S)−A(r;S′)‖ must never exceed the bound).
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"boltondp/internal/rng"
)

// Budget is an (ε, δ) differential-privacy budget. Delta = 0 denotes
// pure ε-differential privacy (Laplace-style noise, Theorem 1);
// Delta > 0 selects the Gaussian mechanism (Theorem 3).
type Budget struct {
	Epsilon float64
	Delta   float64
}

// Pure reports whether the budget is pure ε-DP (δ = 0).
func (b Budget) Pure() bool { return b.Delta == 0 }

// Validate returns an error if the budget is not usable.
func (b Budget) Validate() error {
	if b.Epsilon <= 0 {
		return fmt.Errorf("dp: epsilon must be positive, got %v", b.Epsilon)
	}
	if b.Delta < 0 || b.Delta >= 1 {
		return fmt.Errorf("dp: delta must be in [0,1), got %v", b.Delta)
	}
	return nil
}

// String implements fmt.Stringer.
func (b Budget) String() string {
	if b.Pure() {
		return fmt.Sprintf("ε=%g", b.Epsilon)
	}
	return fmt.Sprintf("(ε=%g, δ=%g)", b.Epsilon, b.Delta)
}

// Split divides the budget evenly across n sub-computations using the
// simple composition theorem ([17] in the paper) — the strategy §4.3
// uses for the 10 one-vs-all MNIST sub-models. Both ε and δ divide.
func (b Budget) Split(n int) Budget {
	if n < 1 {
		panic(fmt.Sprintf("dp: Split over %d parts", n))
	}
	return Budget{Epsilon: b.Epsilon / float64(n), Delta: b.Delta / float64(n)}
}

// Perturb returns w + κ where κ is calibrated to the given
// L2-sensitivity under this budget: Gamma-magnitude spherical noise for
// pure ε-DP (Theorem 1), per-component Gaussian for (ε,δ)-DP
// (Theorem 3). The input is not modified.
func (b Budget) Perturb(r *rand.Rand, w []float64, sensitivity float64) ([]float64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if sensitivity < 0 {
		return nil, fmt.Errorf("dp: negative sensitivity %v", sensitivity)
	}
	if r == nil {
		return nil, fmt.Errorf("dp: nil random source")
	}
	out := make([]float64, len(w))
	copy(out, w)
	noise := make([]float64, len(w))
	if b.Pure() {
		rng.GammaSphere(r, noise, sensitivity, b.Epsilon)
	} else {
		sigma := rng.GaussianSigma(sensitivity, b.Epsilon, b.Delta)
		rng.GaussianVec(r, noise, sigma)
	}
	for i := range out {
		out[i] += noise[i]
	}
	return out, nil
}

// NoiseScale reports the characteristic scale of the noise this budget
// adds at the given sensitivity: the expected noise norm d·Δ/ε for pure
// ε-DP, and σ√d for the Gaussian mechanism. Used for reporting only.
func (b Budget) NoiseScale(d int, sensitivity float64) float64 {
	if b.Pure() {
		return float64(d) * sensitivity / b.Epsilon
	}
	return rng.GaussianSigma(sensitivity, b.Epsilon, b.Delta) * math.Sqrt(float64(d))
}

// ---------------------------------------------------------------------
// L2-sensitivity calculus for PSGD (paper §3.2.1–3.2.3).
//
// Every function takes the mini-batch size b and applies the factor-b
// improvement of §3.2.3 ("Mini-batching"). Pass b = 1 for plain PSGD.
// ---------------------------------------------------------------------

func checkKMB(k, m, b int) {
	if k < 1 || m < 1 || b < 1 {
		panic(fmt.Sprintf("dp: sensitivity requires k,m,b >= 1, got k=%d m=%d b=%d", k, m, b))
	}
}

// SensitivityConvexConstant is Corollary 1 (Algorithm 1, line 3):
// Δ₂ = 2kLη / b for L-Lipschitz convex β-smooth losses run k passes at
// constant step η ≤ 2/β.
func SensitivityConvexConstant(L, eta float64, k, b int) float64 {
	if L < 0 || eta <= 0 {
		panic(fmt.Sprintf("dp: bad L=%v eta=%v", L, eta))
	}
	checkKMB(k, 1, b)
	return 2 * float64(k) * L * eta / float64(b)
}

// SensitivityConvexDecreasing is Corollary 2 made batch-aware: for
// step sizes η_t = 2/(β(t+m^c)) with t counting mini-batch updates,
// Δ₂ = (4L/β)(1/(b·m^c) + ln k / m). At b = 1 this is the paper's
// (4L/β)(1/m^c + ln k/m); for larger b only the first-pass term gains
// the full 1/b (later passes hit the differing batch at t ≥ j·m/b, so
// the 1/b of the additive term cancels against the b-fold earlier
// position — the same phenomenon as SensitivityStronglyConvex).
func SensitivityConvexDecreasing(L, beta float64, k, m, b int, c float64) float64 {
	if L < 0 || beta <= 0 || c < 0 || c >= 1 {
		panic(fmt.Sprintf("dp: bad L=%v beta=%v c=%v", L, beta, c))
	}
	checkKMB(k, m, b)
	mc := math.Pow(float64(m), c)
	return 4 * L / beta * (1/(float64(b)*mc) + math.Log(float64(k))/float64(m))
}

// SensitivityConvexSqrt is Corollary 3 made batch-aware: for step
// sizes η_t = 2/(β(√t+m^c)) with t counting mini-batch updates,
// Δ₂ = (4L/(bβ)) Σ_{j=0}^{k-1} 1/√(j·m/b + 1 + m^c). (The exact finite
// sum is used rather than the big-O simplification; at b = 1 it is the
// paper's Σ 1/√(jm+1+m^c).)
func SensitivityConvexSqrt(L, beta float64, k, m, b int, c float64) float64 {
	if L < 0 || beta <= 0 || c < 0 || c >= 1 {
		panic(fmt.Sprintf("dp: bad L=%v beta=%v c=%v", L, beta, c))
	}
	checkKMB(k, m, b)
	mc := math.Pow(float64(m), c)
	perPass := float64(m) / float64(b)
	var sum float64
	for j := 0; j < k; j++ {
		sum += 1 / math.Sqrt(float64(j)*perPass+1+mc)
	}
	return 4 * L / beta * sum / float64(b)
}

// SensitivityStronglyConvex is Lemma 8 (Algorithm 2, line 3): for
// γ-strongly convex losses with η_t = min(1/β, 1/(γt)),
// Δ₂ = 2L/(γm). Independent of the number of passes k — the property
// that makes k oblivious to privacy for Algorithm 2 (§4.3) — and, in
// this implementation, independent of the mini-batch size b.
//
// REPRODUCTION FINDING — the paper's §3.2.3 claims a factor-b
// improvement for "all our sensitivity bounds", which would give
// 2L/(γmb) here. That does not survive Lemma 8's own telescoping when
// the decreasing schedule counts mini-batch updates (as any batched
// implementation, including Bismarck's UDA, does): the b-fold smaller
// additive term 2η_t·L/b is exactly cancelled by the b-fold smaller
// update count T = km/b in the product ∏(1−1/t) = t*/T, leaving
// 2L/(γm) regardless of b. Brute-force pairwise runs confirm it: the
// empirical worst-case ‖A(r;S)−A(r;S′)‖ is flat in b and *exceeds*
// 2L/(γmb) already at b = 10 (see TestPaperBatchBoundIsViolated). The
// sound bound is used here; SensitivityStronglyConvexPaperBatch exposes
// the paper's calibration for reproducing its reported figures.
func SensitivityStronglyConvex(L, gamma float64, m int) float64 {
	if L < 0 || gamma <= 0 {
		panic(fmt.Sprintf("dp: bad L=%v gamma=%v", L, gamma))
	}
	checkKMB(1, m, 1)
	return 2 * L / (gamma * float64(m))
}

// SensitivityStronglyConvexPaperBatch is the paper's Algorithm 2
// calibration with the §3.2.3 mini-batch division: Δ₂ = 2L/(γmb).
// Per the finding documented on SensitivityStronglyConvex this
// under-noises for b > 1; it exists so the experiment harness can
// reproduce the paper's reported accuracy figures, and should not be
// used for real privacy guarantees.
func SensitivityStronglyConvexPaperBatch(L, gamma float64, m, b int) float64 {
	return SensitivityStronglyConvex(L, gamma, m) / float64(b)
}

// SensitivityStronglyConvexConstant is Lemma 7 made batch-aware: for
// γ-strongly convex losses at constant step η ≤ 1/β and U = m/b
// updates per pass, Δ₂ = 2ηL / (b·(1−(1−ηγ)^(m/b))). (At b = 1 this is
// the paper's 2ηL/(1−(1−ηγ)^m); for larger b the geometric series runs
// over U per-pass contractions, so the exponent must shrink with b —
// the same correction as SensitivityStronglyConvex.)
func SensitivityStronglyConvexConstant(L, gamma, eta float64, m, b int) float64 {
	if L < 0 || gamma <= 0 || eta <= 0 {
		panic(fmt.Sprintf("dp: bad L=%v gamma=%v eta=%v", L, gamma, eta))
	}
	if eta*gamma >= 1 {
		// (1−ηγ) ≤ 0: every pass fully contracts; the bound degenerates
		// to the single-update bound 2ηL/b.
		return 2 * eta * L / float64(b)
	}
	checkKMB(1, m, b)
	updatesPerPass := float64(m) / float64(b)
	den := 1 - math.Pow(1-eta*gamma, updatesPerPass)
	return 2 * eta * L / (float64(b) * den)
}

// ---------------------------------------------------------------------
// Sharded (parallel) sensitivity — the engine's averaged-model bounds.
//
// The sharded execution strategy (internal/engine) cuts the m rows into
// P disjoint shards of size ≥ minShard, advances per-shard PSGD one
// pass per epoch, and merges by uniform model averaging. A single
// differing example lives in exactly one shard, so per epoch the pair
// of runs diverges only inside that shard — by at most the single-shard
// per-epoch injection 2η_t·L/b — and averaging divides the injected
// difference by P. Carried differences are propagated to every worker
// through the shared averaged model, where each update contracts them
// by (1−η_tγ) (Lemma 2; factor 1 in the merely convex case), which is
// exactly the telescoping of Lemmas 7–8 evaluated on a dataset of the
// shard's size. The averaged-model sensitivity is therefore
//
//	Δ_sharded = Δ_shard(minShard) / P
//
// for every schedule family, evaluated at the smallest shard (largest
// per-shard bound). For the strongly convex schedule this equals
// 2L/(γ·(m/P))/P = 2L/(γm) — the sequential bound, making parallelism
// free privacy-wise. The bound is verified empirically against
// brute-force neighboring-dataset engine runs in this package's tests.
// ---------------------------------------------------------------------

func checkWorkers(workers int) {
	if workers < 1 {
		panic(fmt.Sprintf("dp: sharded sensitivity requires workers >= 1, got %d", workers))
	}
}

// SensitivityShardedStronglyConvex is Lemma 8 under P-way sharding with
// per-epoch model averaging: Δ₂ = 2L/(γ·minShard)/P. With equal shards
// (minShard = m/P) this collapses to the sequential 2L/(γm).
func SensitivityShardedStronglyConvex(L, gamma float64, minShard, workers int) float64 {
	checkWorkers(workers)
	return SensitivityStronglyConvex(L, gamma, minShard) / float64(workers)
}

// SensitivityShardedConvexConstant is Corollary 1 under P-way sharding:
// Δ₂ = 2kLη/(b·P) — strictly better than the sequential bound, since
// the per-epoch injection happens in one shard and is averaged away by
// the merge.
func SensitivityShardedConvexConstant(L, eta float64, k, b, workers int) float64 {
	checkWorkers(workers)
	return SensitivityConvexConstant(L, eta, k, b) / float64(workers)
}

// SensitivityShardedConvexDecreasing is Corollary 2 under P-way
// sharding, evaluated at the smallest shard: Δ_shard(minShard)/P.
func SensitivityShardedConvexDecreasing(L, beta float64, k, minShard, b int, c float64, workers int) float64 {
	checkWorkers(workers)
	return SensitivityConvexDecreasing(L, beta, k, minShard, b, c) / float64(workers)
}

// SensitivityShardedConvexSqrt is Corollary 3 under P-way sharding,
// evaluated at the smallest shard: Δ_shard(minShard)/P.
func SensitivityShardedConvexSqrt(L, beta float64, k, minShard, b int, c float64, workers int) float64 {
	checkWorkers(workers)
	return SensitivityConvexSqrt(L, beta, k, minShard, b, c) / float64(workers)
}

// ---------------------------------------------------------------------
// Composition.
// ---------------------------------------------------------------------

// AdvancedCompositionEpsilon returns the total privacy cost
// ε_total = T·ε₁·(e^{ε₁}−1) + √(2T·ln(1/δ′))·ε₁ of running T
// ε₁-DP steps, per the advanced composition theorem used by BST14
// (line 5 of Algorithms 4 and 5).
func AdvancedCompositionEpsilon(eps1 float64, T int, deltaPrime float64) float64 {
	if eps1 < 0 || T < 0 || deltaPrime <= 0 || deltaPrime >= 1 {
		panic(fmt.Sprintf("dp: bad advanced composition args eps1=%v T=%d δ'=%v", eps1, T, deltaPrime))
	}
	tf := float64(T)
	return tf*eps1*(math.Exp(eps1)-1) + math.Sqrt(2*tf*math.Log(1/deltaPrime))*eps1
}

// SolveEps1 inverts AdvancedCompositionEpsilon: it returns the largest
// per-step ε₁ such that T compositions cost at most eps under advanced
// composition with slack δ′. This is exactly line 5 of Algorithms 4–5
// ("ε₁ ← Solution of ε = Tε₁(e^{ε₁}−1) + √(2T ln(1/δ₁))ε₁"), solved by
// bisection: the left-hand side is continuous and strictly increasing
// in ε₁.
func SolveEps1(eps float64, T int, deltaPrime float64) float64 {
	if eps <= 0 || T < 1 || deltaPrime <= 0 || deltaPrime >= 1 {
		panic(fmt.Sprintf("dp: bad SolveEps1 args eps=%v T=%d δ'=%v", eps, T, deltaPrime))
	}
	lo, hi := 0.0, 1.0
	for AdvancedCompositionEpsilon(hi, T, deltaPrime) < eps {
		hi *= 2
		if hi > 1e6 {
			return hi // eps absurdly large; caller gets an effectively noiseless run
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if AdvancedCompositionEpsilon(mid, T, deltaPrime) < eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
