package dp

// Executable record of the reproduction finding documented on
// SensitivityStronglyConvex: the paper's §3.2.3 factor-b division
// applied to Algorithm 2's bound (2L/(γmb)) is NOT an upper bound on
// the real L2-sensitivity of batch-counted PSGD, while the
// b-independent 2L/(γm) is. We search adversarially over random
// neighboring datasets and permutations at b = 10 and require at least
// one violation of the paper bound — and zero violations of the sound
// bound.

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestPaperBatchBoundIsViolated(t *testing.T) {
	lambda := 0.05
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	const (
		m = 60
		b = 10
		k = 2
	)
	paper := SensitivityStronglyConvexPaperBatch(p.L, p.Gamma, m, b)
	sound := SensitivityStronglyConvex(p.L, p.Gamma, m)

	violatedPaper := false
	for seed := int64(0); seed < 4000; seed++ {
		r := rand.New(rand.NewSource(seed))
		X := make([][]float64, m)
		Y := make([]float64, m)
		for i := range X {
			x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			vec.Normalize(x)
			X[i] = x
			Y[i] = math.Copysign(1, r.NormFloat64())
		}
		S := &sgd.SliceSamples{X: X, Y: Y}
		i := r.Intn(m)
		X2 := make([][]float64, m)
		copy(X2, X)
		Y2 := make([]float64, m)
		copy(Y2, Y)
		nx := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(nx)
		X2[i] = nx
		Y2[i] = math.Copysign(1, r.NormFloat64())
		Sp := &sgd.SliceSamples{X: X2, Y: Y2}

		cfg := sgd.Config{
			Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: k, Batch: b, Perm: r.Perm(m), Radius: 1 / lambda,
		}
		w1, err := sgd.Run(S, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := sgd.Run(Sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := vec.Dist(w1.W, w2.W)
		if d > sound+1e-9 {
			t.Fatalf("seed %d: sound bound violated: %v > %v", seed, d, sound)
		}
		if d > paper+1e-9 {
			violatedPaper = true
		}
	}
	if !violatedPaper {
		t.Errorf("no violation of the paper's 2L/(γmb) = %v found in 4000 adversarial trials; "+
			"if this persists, re-examine the finding (sound bound %v)", paper, sound)
	}
}
