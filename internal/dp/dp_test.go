package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestBudgetValidate(t *testing.T) {
	good := []Budget{{1, 0}, {0.1, 1e-6}, {4, 0.01}}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", b, err)
		}
	}
	bad := []Budget{{0, 0}, {-1, 0}, {1, -0.1}, {1, 1}}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("%v: expected error", b)
		}
	}
}

func TestBudgetPureAndString(t *testing.T) {
	if !(Budget{1, 0}).Pure() {
		t.Error("δ=0 should be pure")
	}
	if (Budget{1, 1e-6}).Pure() {
		t.Error("δ>0 should not be pure")
	}
	if s := (Budget{1, 0}).String(); s == "" {
		t.Error("empty String")
	}
	if s := (Budget{1, 1e-6}).String(); s == "" {
		t.Error("empty String")
	}
}

func TestBudgetSplit(t *testing.T) {
	b := Budget{Epsilon: 1, Delta: 1e-4}.Split(10)
	if math.Abs(b.Epsilon-0.1) > 1e-15 || math.Abs(b.Delta-1e-5) > 1e-20 {
		t.Errorf("Split = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Error("Split(0) did not panic")
		}
	}()
	Budget{Epsilon: 1}.Split(0)
}

func TestPerturbPure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := []float64{1, 2, 3}
	out, err := Budget{Epsilon: 1}.Perturb(r, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Equal(out, w, 0) {
		t.Error("pure Perturb added no noise")
	}
	if !vec.Equal(w, []float64{1, 2, 3}, 0) {
		t.Error("Perturb modified its input")
	}
	// ‖κ‖ mean over many draws ≈ d·Δ/ε.
	const n = 30000
	var sum float64
	for i := 0; i < n; i++ {
		o, _ := Budget{Epsilon: 2}.Perturb(r, w, 0.5)
		diff := make([]float64, 3)
		vec.Sub(diff, o, w)
		sum += vec.Norm(diff)
	}
	want := 3 * 0.5 / 2.0
	if mean := sum / n; math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean noise norm %v, want ~%v", mean, want)
	}
}

func TestPerturbGaussian(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	w := make([]float64, 5)
	b := Budget{Epsilon: 0.5, Delta: 1e-5}
	const n = 50000
	var sum2 float64
	for i := 0; i < n; i++ {
		o, err := b.Perturb(r, w, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range o {
			sum2 += x * x
		}
	}
	sigma := math.Sqrt(2*math.Log(1.25/b.Delta)) / b.Epsilon
	variance := sum2 / float64(n*5)
	if math.Abs(variance-sigma*sigma) > 0.05*sigma*sigma {
		t.Errorf("component variance %v, want ~%v", variance, sigma*sigma)
	}
}

func TestPerturbErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if _, err := (Budget{Epsilon: 0}).Perturb(r, []float64{1}, 1); err == nil {
		t.Error("expected error for ε=0")
	}
	if _, err := (Budget{Epsilon: 1}).Perturb(r, []float64{1}, -1); err == nil {
		t.Error("expected error for negative sensitivity")
	}
	if _, err := (Budget{Epsilon: 1}).Perturb(nil, []float64{1}, 1); err == nil {
		t.Error("expected error for nil rand")
	}
}

func TestPerturbZeroSensitivityIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	w := []float64{1, 2}
	out, err := Budget{Epsilon: 1}.Perturb(r, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(out, w, 0) {
		t.Errorf("zero sensitivity should add no noise: %v", out)
	}
}

func TestNoiseScale(t *testing.T) {
	// Pure: d·Δ/ε.
	if got := (Budget{Epsilon: 2}).NoiseScale(10, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("pure NoiseScale = %v, want 5", got)
	}
	// Gaussian grows like √d, so for large d it is far below the pure scale.
	g := Budget{Epsilon: 2, Delta: 1e-6}
	if g.NoiseScale(10000, 1) >= (Budget{Epsilon: 2}).NoiseScale(10000, 1) {
		t.Error("Gaussian noise scale should beat pure ε-DP at high d")
	}
}

func TestSensitivityClosedForms(t *testing.T) {
	// Corollary 1: 2kLη/b.
	if got := SensitivityConvexConstant(1, 0.01, 10, 1); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("convex constant = %v, want 0.2", got)
	}
	if got := SensitivityConvexConstant(1, 0.01, 10, 50); math.Abs(got-0.004) > 1e-15 {
		t.Errorf("convex constant b=50 = %v, want 0.004", got)
	}
	// Lemma 8 (sound batch-aware form): 2L/(γm).
	if got := SensitivityStronglyConvex(2, 0.01, 1000); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("strongly convex = %v, want 0.4", got)
	}
	// Corollary 2: (4L/β)(1/m^c + ln k/m)/b.
	L, beta := 1.0, 1.0
	k, m, c := 4, 100, 0.5
	want := 4 * L / beta * (1/math.Sqrt(100) + math.Log(4)/100)
	if got := SensitivityConvexDecreasing(L, beta, k, m, 1, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("convex decreasing = %v, want %v", got, want)
	}
	// Corollary 3 exact sum.
	var sum float64
	for j := 0; j < k; j++ {
		sum += 1 / math.Sqrt(float64(j*m)+1+math.Sqrt(100))
	}
	want = 4 * L / beta * sum
	if got := SensitivityConvexSqrt(L, beta, k, m, 1, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("convex sqrt = %v, want %v", got, want)
	}
	// Lemma 7: 2ηL/(b(1−(1−ηγ)^m)).
	eta, gamma := 0.5, 0.1
	want = 2 * eta * L / (1 - math.Pow(1-eta*gamma, 200))
	if got := SensitivityStronglyConvexConstant(L, gamma, eta, 200, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("strongly convex constant = %v, want %v", got, want)
	}
}

func TestSensitivityStronglyConvexConstantDegenerate(t *testing.T) {
	// ηγ >= 1 falls back to the single-update bound 2ηL/b.
	got := SensitivityStronglyConvexConstant(1, 2, 0.5, 100, 1)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("degenerate bound = %v, want 1", got)
	}
}

func TestSensitivityMonotonicity(t *testing.T) {
	// Convex constant grows with k; larger batches shrink everything;
	// strongly convex shrinks with m.
	if SensitivityConvexConstant(1, 0.01, 20, 1) <= SensitivityConvexConstant(1, 0.01, 10, 1) {
		t.Error("convex sensitivity should grow with passes")
	}
	if SensitivityConvexConstant(1, 0.01, 10, 50) >= SensitivityConvexConstant(1, 0.01, 10, 10) {
		t.Error("batching should shrink sensitivity")
	}
	if SensitivityStronglyConvex(1, 0.01, 10000) >= SensitivityStronglyConvex(1, 0.01, 1000) {
		t.Error("strongly convex sensitivity should shrink with m")
	}
}

func TestSensitivityPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"convex constant eta=0":   func() { SensitivityConvexConstant(1, 0, 1, 1) },
		"convex constant k=0":     func() { SensitivityConvexConstant(1, 0.1, 0, 1) },
		"decreasing c=1":          func() { SensitivityConvexDecreasing(1, 1, 1, 10, 1, 1) },
		"sqrt beta=0":             func() { SensitivityConvexSqrt(1, 0, 1, 10, 1, 0.5) },
		"strongly gamma=0":        func() { SensitivityStronglyConvex(1, 0, 10) },
		"strongly constant eta=0": func() { SensitivityStronglyConvexConstant(1, 0.1, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSolveEps1Inverse(t *testing.T) {
	for _, c := range []struct {
		eps    float64
		T      int
		delta1 float64
	}{
		{1, 1000, 1e-8},
		{0.1, 60000, 1e-10},
		{4, 100, 1e-6},
	} {
		e1 := SolveEps1(c.eps, c.T, c.delta1)
		back := AdvancedCompositionEpsilon(e1, c.T, c.delta1)
		if math.Abs(back-c.eps) > 1e-6*c.eps {
			t.Errorf("SolveEps1(%v,%d,%v) = %v composes back to %v", c.eps, c.T, c.delta1, e1, back)
		}
		// Per-step budget must be far below the total for large T.
		if e1 >= c.eps {
			t.Errorf("eps1 = %v should be < eps = %v", e1, c.eps)
		}
	}
}

func TestAdvancedCompositionMonotone(t *testing.T) {
	prev := 0.0
	for _, e := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
		cur := AdvancedCompositionEpsilon(e, 1000, 1e-8)
		if cur <= prev {
			t.Errorf("composition not increasing at ε₁=%v", e)
		}
		prev = cur
	}
}

// The central scientific check of the package: the closed-form bounds
// really do dominate the empirical L2 distance between PSGD outputs on
// neighboring datasets run with the same randomness (Lemma 5 + Lemma 6
// / Lemma 8). We brute-force random neighboring datasets, positions and
// permutations, run the actual engine, and compare.
func TestEmpiricalSensitivityConvexProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 20 + r.Intn(30)
		d := 2 + r.Intn(4)
		k := 1 + r.Intn(3)
		b := 1 + r.Intn(3)
		eta := (0.2 + 0.8*r.Float64()) * 2 / p.Beta // any η ≤ 2/β
		S := randomSet(r, m, d)
		Sp := neighbor(r, S, r.Intn(m))
		perm := r.Perm(m)
		cfg := sgd.Config{Loss: f, Step: sgd.Constant(eta), Passes: k, Batch: b, Perm: perm}
		w1, err := sgd.Run(S, cfg)
		if err != nil {
			return false
		}
		w2, err := sgd.Run(Sp, cfg)
		if err != nil {
			return false
		}
		bound := SensitivityConvexConstant(p.L, eta, k, b)
		return vec.Dist(w1.W, w2.W) <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalSensitivityStronglyConvexProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := []float64{0.01, 0.05, 0.1}[r.Intn(3)]
		f := loss.NewLogistic(lambda, 0)
		p := f.Params()
		m := 20 + r.Intn(30)
		d := 2 + r.Intn(4)
		k := 1 + r.Intn(3)
		b := 1 + r.Intn(3)
		S := randomSet(r, m, d)
		Sp := neighbor(r, S, r.Intn(m))
		perm := r.Perm(m)
		cfg := sgd.Config{
			Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: k, Batch: b, Perm: perm, Radius: 1 / lambda,
		}
		w1, err := sgd.Run(S, cfg)
		if err != nil {
			return false
		}
		w2, err := sgd.Run(Sp, cfg)
		if err != nil {
			return false
		}
		bound := SensitivityStronglyConvex(p.L, p.Gamma, m)
		return vec.Dist(w1.W, w2.W) <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Model averaging must not increase sensitivity (Lemma 10).
func TestEmpiricalSensitivityAveragingProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 20 + r.Intn(20)
		k := 1 + r.Intn(2)
		eta := 1 / p.Beta
		S := randomSet(r, m, 3)
		Sp := neighbor(r, S, r.Intn(m))
		perm := r.Perm(m)
		cfg := sgd.Config{Loss: f, Step: sgd.Constant(eta), Passes: k, Batch: 1, Perm: perm, Average: true}
		w1, err := sgd.Run(S, cfg)
		if err != nil {
			return false
		}
		w2, err := sgd.Run(Sp, cfg)
		if err != nil {
			return false
		}
		bound := SensitivityConvexConstant(p.L, eta, k, 1)
		return vec.Dist(w1.WAvg, w2.WAvg) <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomSet builds m unit-ball points with ±1 labels.
func randomSet(r *rand.Rand, m, d int) *sgd.SliceSamples {
	s := &sgd.SliceSamples{X: make([][]float64, m), Y: make([]float64, m)}
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		vec.Normalize(x)
		s.X[i] = x
		s.Y[i] = math.Copysign(1, r.NormFloat64())
	}
	return s
}

// neighbor returns a copy of s with example i replaced by a fresh one.
func neighbor(r *rand.Rand, s *sgd.SliceSamples, i int) *sgd.SliceSamples {
	out := &sgd.SliceSamples{X: make([][]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	copy(out.X, s.X)
	copy(out.Y, s.Y)
	x := make([]float64, len(s.X[i]))
	for j := range x {
		x[j] = r.NormFloat64()
	}
	vec.Normalize(x)
	out.X[i] = x
	out.Y[i] = math.Copysign(1, r.NormFloat64())
	return out
}
