package dp

import (
	"math"
	"testing"
)

// Budget.Split edge cases (satellite of the accountant PR): the split
// arithmetic is the foundation the accountant's recombination guarantee
// rests on, so its corners are pinned here.

func TestSplitOneIsIdentity(t *testing.T) {
	b := Budget{Epsilon: 0.7, Delta: 3e-6}
	if got := b.Split(1); got != b {
		t.Errorf("Split(1) = %v, want %v", got, b)
	}
}

func TestSplitZeroAndNegativePanic(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%d) did not panic", n)
				}
			}()
			Budget{Epsilon: 1}.Split(n)
		}()
	}
}

// δ splits alongside ε (simple composition divides both), and a pure
// ε-DP budget stays pure under any split.
func TestSplitDelta(t *testing.T) {
	b := Budget{Epsilon: 2, Delta: 1e-4}.Split(8)
	if b.Epsilon != 0.25 || b.Delta != 1.25e-5 {
		t.Errorf("Split(8) = %v", b)
	}
	if got := (Budget{Epsilon: 2}).Split(8); !got.Pure() {
		t.Errorf("pure budget lost purity: %v", got)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("split result invalid: %v", err)
	}
}

// Recombination: n children must sum back to the parent to within
// floating-point rounding, for awkward divisors included — the
// arithmetic fact the accountant's overdraw slack is calibrated
// against.
func TestSplitRecombines(t *testing.T) {
	parent := Budget{Epsilon: 0.3, Delta: 7e-6}
	for _, n := range []int{2, 3, 7, 10, 33, 1000} {
		child := parent.Split(n)
		var eps, del float64
		for i := 0; i < n; i++ {
			eps += child.Epsilon
			del += child.Delta
		}
		if math.Abs(eps-parent.Epsilon) > 1e-9*parent.Epsilon {
			t.Errorf("n=%d: ε recombines to %.17g, want %.17g", n, eps, parent.Epsilon)
		}
		if math.Abs(del-parent.Delta) > 1e-9*parent.Delta {
			t.Errorf("n=%d: δ recombines to %.17g, want %.17g", n, del, parent.Delta)
		}
	}
}

// A split of a split composes like a flat split: (ε/n)/m = ε/(nm), so
// nested decompositions (tuning inside one-vs-all) stay coherent.
func TestSplitNests(t *testing.T) {
	b := Budget{Epsilon: 6, Delta: 6e-5}
	nested := b.Split(2).Split(3)
	flat := b.Split(6)
	if math.Abs(nested.Epsilon-flat.Epsilon) > 1e-15 || math.Abs(nested.Delta-flat.Delta) > 1e-20 {
		t.Errorf("nested %v != flat %v", nested, flat)
	}
}
