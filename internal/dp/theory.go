package dp

import (
	"fmt"
	"math"
)

// This file implements the paper's convergence theory as executable
// formulas: the excess-empirical-risk bounds of Theorems 10 and 12 and
// the Table 2 rate comparison against BST14. The experiment harness
// prints them next to measured risks so the theory and the code cannot
// silently drift apart.

// ConvexExcessRiskBound is Theorem 10: for 1-pass private convex PSGD
// with constant step η = R/(L√m) and model averaging,
//
//	E[L_S(w̃) − L*_S] ≤ (L + 2(1/2 + √L))·R/√m + 2dLR/(ε√m).
//
// The first term is the optimization error (Lemma 12), the second the
// privacy cost — the expectation of L‖κ‖ under Gamma noise.
func ConvexExcessRiskBound(L, R float64, d, m int, eps float64) float64 {
	if L <= 0 || R <= 0 || d < 1 || m < 1 || eps <= 0 {
		panic(fmt.Sprintf("dp: bad ConvexExcessRiskBound args L=%v R=%v d=%d m=%d ε=%v", L, R, d, m, eps))
	}
	sm := math.Sqrt(float64(m))
	opt := (L + 2*(0.5+math.Sqrt(L))) * R / sm
	priv := 2 * float64(d) * L * R / (eps * sm)
	return opt + priv
}

// StronglyConvexExcessRiskBound is Theorem 12 (up to the universal
// constant c, which we take as 1): for 1-pass private strongly convex
// PSGD with η_t = 1/(γt),
//
//	E[L_S(w̃) − L*_S] ≤ ((L+βR)² + G²)·log m/(γm) + 2dG²/(εγm),
//
// with G the gradient-norm bound sup‖ℓ'_t(w)‖ (≤ L under our
// normalization).
func StronglyConvexExcessRiskBound(L, beta, gamma, R, G float64, d, m int, eps float64) float64 {
	if L <= 0 || beta <= 0 || gamma <= 0 || R <= 0 || G <= 0 || d < 1 || m < 1 || eps <= 0 {
		panic("dp: bad StronglyConvexExcessRiskBound args")
	}
	mf := float64(m)
	opt := ((L+beta*R)*(L+beta*R) + G*G) * math.Log(mf) / (gamma * mf)
	priv := 2 * float64(d) * G * G / (eps * gamma * mf)
	return opt + priv
}

// Table2Rate evaluates the asymptotic convergence rates of Table 2
// ((ε,δ)-DP, constant number of passes), dropping constants: the
// returned value is the m,d-dependent factor only, for comparing decay
// shapes across m.
//
//	ours,  convex:           √d/√m
//	BST14, convex:           √d·log^{3/2}(m)/√m
//	ours,  strongly convex:  √d·log(m)/m
//	BST14, strongly convex:  d·log²(m)/m
func Table2Rate(algorithm string, stronglyConvex bool, d, m int) (float64, error) {
	if d < 1 || m < 2 {
		return 0, fmt.Errorf("dp: bad Table2Rate args d=%d m=%d", d, m)
	}
	df, mf := float64(d), float64(m)
	lg := math.Log(mf)
	switch {
	case algorithm == "ours" && !stronglyConvex:
		return math.Sqrt(df) / math.Sqrt(mf), nil
	case algorithm == "bst14" && !stronglyConvex:
		return math.Sqrt(df) * math.Pow(lg, 1.5) / math.Sqrt(mf), nil
	case algorithm == "ours" && stronglyConvex:
		return math.Sqrt(df) * lg / mf, nil
	case algorithm == "bst14" && stronglyConvex:
		return df * lg * lg / mf, nil
	default:
		return 0, fmt.Errorf("dp: unknown algorithm %q", algorithm)
	}
}

// NoiseTailBound re-exports Theorem 2 at the Budget level: with
// probability ≥ 1−γ the pure-ε noise satisfies ‖κ‖ ≤ d·ln(d/γ)·Δ₂/ε.
// It returns +Inf for Gaussian budgets, whose tail is characterized by
// σ√d instead (use NoiseScale).
func (b Budget) NoiseTailBound(d int, gamma, sensitivity float64) float64 {
	if !b.Pure() {
		return math.Inf(1)
	}
	if d < 1 || gamma <= 0 || gamma >= 1 || sensitivity < 0 {
		panic("dp: bad NoiseTailBound args")
	}
	df := float64(d)
	return df * math.Log(df/gamma) * sensitivity / b.Epsilon
}
