package dp_test

// External test package: exercises the sharded (averaged-model)
// sensitivity bounds against real engine runs. It lives outside
// package dp so it can drive internal/engine, which sits above dp in
// the import graph.

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestShardedSensitivityFormulas(t *testing.T) {
	L, gamma, beta := 1.0, 0.05, 0.3

	// Equal shards: the sharded strongly convex bound collapses to the
	// sequential bound at the full size — the privacy-free parallelism
	// identity.
	m, workers := 1000, 5
	got := dp.SensitivityShardedStronglyConvex(L, gamma, m/workers, workers)
	want := dp.SensitivityStronglyConvex(L, gamma, m)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("sharded strongly convex %v != sequential %v", got, want)
	}

	// Convex constant: exactly the sequential bound divided by P.
	if got, want := dp.SensitivityShardedConvexConstant(L, 0.01, 3, 10, 4),
		dp.SensitivityConvexConstant(L, 0.01, 3, 10)/4; math.Abs(got-want) > 1e-18 {
		t.Errorf("sharded convex constant %v, want %v", got, want)
	}
	if got, want := dp.SensitivityShardedConvexDecreasing(L, beta, 3, 200, 10, 0.5, 4),
		dp.SensitivityConvexDecreasing(L, beta, 3, 200, 10, 0.5)/4; math.Abs(got-want) > 1e-18 {
		t.Errorf("sharded convex decreasing %v, want %v", got, want)
	}
	if got, want := dp.SensitivityShardedConvexSqrt(L, beta, 3, 200, 10, 0.5, 4),
		dp.SensitivityConvexSqrt(L, beta, 3, 200, 10, 0.5)/4; math.Abs(got-want) > 1e-18 {
		t.Errorf("sharded convex sqrt %v, want %v", got, want)
	}

	// Workers = 1 must be the plain bound.
	if got, want := dp.SensitivityShardedStronglyConvex(L, gamma, m, 1),
		dp.SensitivityStronglyConvex(L, gamma, m); got != want {
		t.Errorf("workers=1 %v != plain %v", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Error("workers=0 did not panic")
		}
	}()
	dp.SensitivityShardedStronglyConvex(L, gamma, m, 0)
}

// The averaged-model sensitivity property, brute force: run the sharded
// engine on neighboring datasets (one replaced example) with identical
// randomness and verify the merged models never diverge by more than
// Δ_sharded = Δ_shard(minShard)/P. This is the Lemma 5-style pairwise
// check of the engine's per-epoch averaging analysis.
func TestShardedEmpiricalSensitivityProperty(t *testing.T) {
	lambda := 0.05
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	const (
		m, d    = 120, 3
		workers = 3
		passes  = 3
		batch   = 2
	)
	step := sgd.StronglyConvexPaper(p.Beta, p.Gamma)
	bound := dp.SensitivityShardedStronglyConvex(p.L, p.Gamma, m/workers, workers)

	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(300 + seed))
		xs := make([][]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			vec.Normalize(x)
			xs[i] = x
			ys[i] = math.Copysign(1, r.NormFloat64())
		}
		alt := r.Intn(m)
		nx := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(nx)
		ny := math.Copysign(1, r.NormFloat64())

		run := func(ax []float64, ay float64) []float64 {
			x2 := make([][]float64, m)
			y2 := make([]float64, m)
			copy(x2, xs)
			copy(y2, ys)
			x2[alt], y2[alt] = ax, ay
			res, err := engine.Run(&sgd.SliceSamples{X: x2, Y: y2}, engine.Config{
				Strategy: engine.Sharded,
				Workers:  workers,
				SGD: sgd.Config{
					Loss: f, Step: step, Passes: passes, Batch: batch,
					Radius: 1 / lambda,
					Rand:   rand.New(rand.NewSource(900 + seed)), // same worker seeds both runs
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.W
		}

		w1 := run(xs[alt], ys[alt])
		w2 := run(nx, ny)
		if dist := vec.Dist(w1, w2); dist > bound+1e-9 {
			t.Fatalf("seed %d: empirical sharded sensitivity %v exceeds bound %v", seed, dist, bound)
		}
	}
}

// Same property for the convex constant-step bound 2kLη/(bP).
func TestShardedEmpiricalSensitivityConvex(t *testing.T) {
	f := loss.NewLogistic(0, 0) // plain convex logistic
	p := f.Params()
	const (
		m, d    = 90, 3
		workers = 3
		passes  = 2
		batch   = 3
	)
	eta := math.Min(1/math.Sqrt(float64(m/workers)), 2/p.Beta)
	step := sgd.Constant(eta)
	bound := dp.SensitivityShardedConvexConstant(p.L, eta, passes, batch, workers)

	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(600 + seed))
		xs := make([][]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			x := make([]float64, d)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			vec.Normalize(x)
			xs[i] = x
			ys[i] = math.Copysign(1, r.NormFloat64())
		}
		alt := r.Intn(m)
		nx := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		vec.Normalize(nx)

		run := func(ax []float64, ay float64) []float64 {
			x2 := make([][]float64, m)
			y2 := make([]float64, m)
			copy(x2, xs)
			copy(y2, ys)
			x2[alt], y2[alt] = ax, ay
			res, err := engine.Run(&sgd.SliceSamples{X: x2, Y: y2}, engine.Config{
				Strategy: engine.Sharded,
				Workers:  workers,
				SGD: sgd.Config{
					Loss: f, Step: step, Passes: passes, Batch: batch,
					Rand: rand.New(rand.NewSource(1200 + seed)),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.W
		}

		w1 := run(xs[alt], ys[alt])
		w2 := run(nx, math.Copysign(1, r.NormFloat64()))
		if dist := vec.Dist(w1, w2); dist > bound+1e-9 {
			t.Fatalf("seed %d: empirical convex sharded sensitivity %v exceeds bound %v", seed, dist, bound)
		}
	}
}
