package dp

import (
	"math"
	"math/rand"
	"testing"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func TestConvexExcessRiskBoundShape(t *testing.T) {
	// Decreases with m and ε, grows with d.
	b := func(d, m int, eps float64) float64 { return ConvexExcessRiskBound(1, 1, d, m, eps) }
	if !(b(10, 10000, 1) < b(10, 1000, 1)) {
		t.Error("bound should shrink with m")
	}
	if !(b(10, 1000, 4) < b(10, 1000, 0.1)) {
		t.Error("bound should shrink with ε")
	}
	if !(b(100, 1000, 1) > b(10, 1000, 1)) {
		t.Error("bound should grow with d")
	}
	// Exact value check: L=R=1, d=1, m=100, ε=1:
	// (1 + 2·1.5)/10 + 2/10 = 0.4 + 0.2 = 0.6.
	if got := b(1, 100, 1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("bound = %v, want 0.6", got)
	}
}

func TestStronglyConvexExcessRiskBoundShape(t *testing.T) {
	b := func(m int, eps float64) float64 {
		return StronglyConvexExcessRiskBound(1, 1, 0.01, 1, 1, 10, m, eps)
	}
	if !(b(100000, 1) < b(1000, 1)) {
		t.Error("bound should shrink with m")
	}
	if !(b(1000, 4) < b(1000, 0.1)) {
		t.Error("bound should shrink with ε")
	}
	// Strongly convex decays ~1/m, convex ~1/√m: at large m the former
	// must win at equal constants.
	sc := StronglyConvexExcessRiskBound(1, 1, 0.1, 1, 1, 5, 1000000, 1)
	cv := ConvexExcessRiskBound(1, 1, 5, 1000000, 1)
	if sc >= cv {
		t.Errorf("strongly convex bound %v should beat convex %v at m=1e6", sc, cv)
	}
}

func TestTheoryBoundPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"convex m=0":   func() { ConvexExcessRiskBound(1, 1, 1, 0, 1) },
		"convex eps=0": func() { ConvexExcessRiskBound(1, 1, 1, 1, 0) },
		"sc gamma=0":   func() { StronglyConvexExcessRiskBound(1, 1, 0, 1, 1, 1, 1, 1) },
		"tail d=0":     func() { Budget{Epsilon: 1}.NoiseTailBound(0, 0.1, 1) },
		"tail gamma=1": func() { Budget{Epsilon: 1}.NoiseTailBound(5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTable2RateOrdering(t *testing.T) {
	// The whole point of Table 2: at constant passes our rates beat
	// BST14's in both regimes, for every m ≥ some small threshold.
	for _, m := range []int{100, 10000, 1000000} {
		for _, strongly := range []bool{false, true} {
			ours, err := Table2Rate("ours", strongly, 50, m)
			if err != nil {
				t.Fatal(err)
			}
			bst, err := Table2Rate("bst14", strongly, 50, m)
			if err != nil {
				t.Fatal(err)
			}
			if ours >= bst {
				t.Errorf("m=%d strongly=%v: ours rate %v should be < bst14 %v", m, strongly, ours, bst)
			}
		}
	}
	if _, err := Table2Rate("nope", false, 1, 10); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Table2Rate("ours", false, 0, 10); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestNoiseTailBoundGaussianInf(t *testing.T) {
	if !math.IsInf((Budget{Epsilon: 1, Delta: 1e-6}).NoiseTailBound(5, 0.1, 1), 1) {
		t.Error("Gaussian budget should report +Inf pure-DP tail")
	}
}

// Empirical check of Theorem 10's privacy term: the measured risk gap
// between the private and non-private model should be within the L‖κ‖
// bound of Lemma 11 for every trial.
func TestRiskDueToPrivacyLemma11(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m, d := 500, 5
	xs := make([][]float64, m)
	ys := make([]float64, m)
	for i := 0; i < m; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		vec.Normalize(x)
		xs[i] = x
		ys[i] = math.Copysign(1, x[0])
	}
	s := &sgd.SliceSamples{X: xs, Y: ys}
	f := loss.NewLogistic(0, 0)
	L := f.Params().L
	res, err := sgd.Run(s, sgd.Config{
		Loss: f, Step: sgd.Constant(0.05), Passes: 2, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sgd.EmpiricalRisk(s, f, res.W)
	for trial := 0; trial < 50; trial++ {
		priv, err := (Budget{Epsilon: 1}).Perturb(r, res.W, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		diff := make([]float64, d)
		vec.Sub(diff, priv, res.W)
		kappa := vec.Norm(diff)
		gap := math.Abs(sgd.EmpiricalRisk(s, f, priv) - base)
		if gap > L*kappa+1e-9 {
			t.Fatalf("risk gap %v exceeds L‖κ‖ = %v (Lemma 11)", gap, L*kappa)
		}
	}
}
