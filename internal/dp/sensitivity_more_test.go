package dp

// Brute-force empirical validation of the remaining sensitivity bounds:
// Corollary 2 (decreasing convex steps), Corollary 3 (square-root
// convex steps), Lemma 7 (strongly convex constant steps), and the
// growth recursion of Lemma 4 that underlies all of them.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"boltondp/internal/loss"
	"boltondp/internal/sgd"
	"boltondp/internal/vec"
)

func runPair(t *testing.T, f loss.Function, step sgd.Schedule, S, Sp *sgd.SliceSamples, k, b int, radius float64, perm []int) float64 {
	t.Helper()
	cfg := sgd.Config{Loss: f, Step: step, Passes: k, Batch: b, Radius: radius, Perm: perm}
	w1, err := sgd.Run(S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := sgd.Run(Sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vec.Dist(w1.W, w2.W)
}

func TestEmpiricalSensitivityConvexDecreasingProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 20 + r.Intn(30)
		k := 1 + r.Intn(3)
		b := 1 + r.Intn(2)
		c := 0.3 + 0.4*r.Float64()
		S := randomSet(r, m, 3)
		Sp := neighbor(r, S, r.Intn(m))
		d := runPair(t, f, sgd.DecreasingConvex(p.Beta, m, c), S, Sp, k, b, 0, r.Perm(m))
		return d <= SensitivityConvexDecreasing(p.L, p.Beta, k, m, b, c)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalSensitivityConvexSqrtProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 20 + r.Intn(30)
		k := 1 + r.Intn(3)
		b := 1 + r.Intn(2)
		c := 0.3 + 0.4*r.Float64()
		S := randomSet(r, m, 3)
		Sp := neighbor(r, S, r.Intn(m))
		d := runPair(t, f, sgd.SqrtConvex(p.Beta, m, c), S, Sp, k, b, 0, r.Perm(m))
		return d <= SensitivityConvexSqrt(p.L, p.Beta, k, m, b, c)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalSensitivityStronglyConvexConstantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lambda := []float64{0.02, 0.05, 0.1}[r.Intn(3)]
		f := loss.NewLogistic(lambda, 0)
		p := f.Params()
		m := 20 + r.Intn(30)
		k := 1 + r.Intn(3)
		b := 1 + r.Intn(2)
		eta := (0.2 + 0.8*r.Float64()) / p.Beta // η ≤ 1/β (Lemma 7)
		S := randomSet(r, m, 3)
		Sp := neighbor(r, S, r.Intn(m))
		d := runPair(t, f, sgd.Constant(eta), S, Sp, k, b, 1/lambda, r.Perm(m))
		return d <= SensitivityStronglyConvexConstant(p.L, p.Gamma, eta, m, b)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Direct validation of the Growth Recursion Lemma (Lemma 4): track δ_t
// along a pair of real SGD trajectories on neighboring datasets, and
// check that at every step the recursion's bound holds:
//
//	same update (Gt = G′t, ρ-expansive):   δ_t ≤ ρ·δ_{t−1}
//	differing update (σ-bounded, ρ-exp.):  δ_t ≤ min(ρ,1)·δ_{t−1} + 2σ_t
func TestGrowthRecursionLemma(t *testing.T) {
	lambda := 0.05
	f := loss.NewLogistic(lambda, 0)
	p := f.Params()
	eta := 1 / p.Beta
	rho := 1 - eta*p.Gamma // Lemma 2
	sigma := eta * p.L     // Lemma 3

	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		m, d := 25, 3
		S := randomSet(r, m, d)
		Sp := neighbor(r, S, r.Intn(m))
		diffIdx := -1
		for i := 0; i < m; i++ {
			x1, y1 := S.At(i)
			x2, y2 := Sp.At(i)
			if y1 != y2 || !vec.Equal(x1, x2, 0) {
				diffIdx = i
				break
			}
		}
		if diffIdx < 0 {
			t.Fatal("neighbor() produced identical datasets")
		}
		perm := r.Perm(m)

		w1 := make([]float64, d)
		w2 := make([]float64, d)
		g := make([]float64, d)
		prev := 0.0
		for pass := 0; pass < 2; pass++ {
			for _, i := range perm {
				x, y := S.At(i)
				f.Grad(g, w1, x, y)
				vec.Axpy(w1, -eta, g)
				x, y = Sp.At(i)
				f.Grad(g, w2, x, y)
				vec.Axpy(w2, -eta, g)
				cur := vec.Dist(w1, w2)
				var bound float64
				if i == diffIdx {
					bound = math.Min(rho, 1)*prev + 2*sigma
				} else {
					bound = rho * prev
				}
				if cur > bound+1e-9 {
					t.Fatalf("seed %d: growth recursion violated at i=%d: δ=%v > %v", seed, i, cur, bound)
				}
				prev = cur
			}
		}
	}
}

// Mini-batching improves sensitivity by the factor b (§3.2.3): compare
// the empirical sensitivity of b=1 and b=5 runs at the same k and m
// against their respective bounds, and confirm the b=5 bound is 5×
// smaller.
func TestMiniBatchFactorProperty(t *testing.T) {
	f := loss.NewLogistic(0, 0)
	p := f.Params()
	eta := 1 / p.Beta
	b1 := SensitivityConvexConstant(p.L, eta, 2, 1)
	b5 := SensitivityConvexConstant(p.L, eta, 2, 5)
	if math.Abs(b1/b5-5) > 1e-9 {
		t.Fatalf("batch factor: %v / %v != 5", b1, b5)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 20 + 5*r.Intn(5) // multiple of 5 so batches align
		S := randomSet(r, m, 3)
		Sp := neighbor(r, S, r.Intn(m))
		perm := r.Perm(m)
		d5 := runPair(t, f, sgd.Constant(eta), S, Sp, 2, 5, 0, perm)
		return d5 <= b5+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
