package dp

// Statistical verification of the differential-privacy guarantee
// itself, in the style of empirical DP testing: run the mechanism on
// two neighboring inputs whose outputs differ by exactly the
// sensitivity, histogram the outputs, and verify the per-bin likelihood
// ratio never exceeds e^ε beyond sampling slack. For d = 1 the
// ε-DP output perturbation reduces to the Laplace mechanism, whose
// ratio bound is tight — a strong end-to-end check that the sampler
// really implements the distribution the proof needs.

import (
	"math"
	"math/rand"
	"testing"
)

func TestMechanismLikelihoodRatioPure(t *testing.T) {
	const (
		eps   = 0.7
		sens  = 1.0
		n     = 400000
		bins  = 40
		lo    = -6.0
		hi    = 7.0
		width = (hi - lo) / bins
	)
	r := rand.New(rand.NewSource(123))
	budget := Budget{Epsilon: eps}

	sample := func(center float64) []int {
		counts := make([]int, bins)
		for i := 0; i < n; i++ {
			out, err := budget.Perturb(r, []float64{center}, sens)
			if err != nil {
				t.Fatal(err)
			}
			b := int((out[0] - lo) / width)
			if b >= 0 && b < bins {
				counts[b]++
			}
		}
		return counts
	}
	// Neighboring "queries": f(S) = 0, f(S') = sens.
	h0 := sample(0)
	h1 := sample(sens)

	bound := math.Exp(eps)
	for b := 0; b < bins; b++ {
		// Only compare well-populated bins; sparse tails have huge
		// relative sampling error.
		if h0[b] < 500 || h1[b] < 500 {
			continue
		}
		ratio := float64(h0[b]) / float64(h1[b])
		if ratio > bound*1.15 || 1/ratio > bound*1.15 {
			t.Errorf("bin %d: likelihood ratio %.3f exceeds e^ε = %.3f", b, math.Max(ratio, 1/ratio), bound)
		}
	}
}

// The same check must FAIL for an under-noised mechanism: if we
// calibrate to half the true sensitivity, some bin's ratio must exceed
// e^ε. This guards the test's own power — a vacuous checker would pass
// broken mechanisms too.
func TestMechanismLikelihoodRatioDetectsUnderNoising(t *testing.T) {
	const (
		eps   = 0.7
		sens  = 1.0
		n     = 200000
		bins  = 40
		lo    = -6.0
		hi    = 7.0
		width = (hi - lo) / bins
	)
	r := rand.New(rand.NewSource(321))
	// Cheating mechanism: noise calibrated to sens/4.
	budget := Budget{Epsilon: eps}
	sample := func(center float64) []int {
		counts := make([]int, bins)
		for i := 0; i < n; i++ {
			out, err := budget.Perturb(r, []float64{center}, sens/4)
			if err != nil {
				t.Fatal(err)
			}
			b := int((out[0] - lo) / width)
			if b >= 0 && b < bins {
				counts[b]++
			}
		}
		return counts
	}
	h0 := sample(0)
	h1 := sample(sens)
	bound := math.Exp(eps)
	violated := false
	for b := 0; b < bins; b++ {
		if h0[b] < 500 || h1[b] < 500 {
			continue
		}
		ratio := float64(h0[b]) / float64(h1[b])
		if ratio > bound*1.15 || 1/ratio > bound*1.15 {
			violated = true
			break
		}
	}
	if !violated {
		t.Error("under-noised mechanism passed the likelihood-ratio check; the check has no power")
	}
}
