// Package boltondp is a Go implementation of "Bolt-on Differential
// Privacy for Scalable Stochastic Gradient Descent-based Analytics"
// (Wu et al., SIGMOD 2017): differentially private permutation-based
// SGD via output perturbation, where a standard SGD run is treated as a
// black box and noise calibrated to a tight L2-sensitivity bound is
// added once, to the final model.
//
// The package is a thin facade over the implementation packages under
// internal/; it exposes everything a downstream user needs to train
// private linear models. The primary entry point is TrainCtx: a
// context-aware, functional-options trainer that draws its privacy
// budget from an Accountant — the single owner of a total (ε, δ)
// budget, which debits every training run in an auditable ledger and
// fails closed when a request would overdraw it:
//
//	acct, _ := boltondp.NewAccountant(boltondp.Budget{Epsilon: 0.1})
//	train, test := boltondp.ProteinSim(rand.New(rand.NewSource(1)), 1.0)
//	res, err := boltondp.TrainCtx(ctx, train, boltondp.NewLogisticLoss(1e-3),
//		boltondp.WithAccountant(acct), // or boltondp.WithBudget(...) stand-alone
//		boltondp.WithPasses(10), boltondp.WithBatch(50), boltondp.WithRadius(1000),
//		boltondp.WithRand(rand.New(rand.NewSource(2))))
//	// res.W is (ε = 0.1)-differentially private; acct.Ledger() is the
//	// audited record of the spend, and cancelling ctx stops the run
//	// within one epoch slice.
//
// Composite workflows — the one-vs-all multiclass build of §4.3, the
// private tuning of Algorithm 3 — split the accountant's budget with
// Accountant.Split, which enforces that the pieces sum to the stated
// guarantee; StampMeta serializes the ledger into model metadata so a
// published model carries its own privacy audit (round-tripped by the
// serving subsystem's /modelz endpoint).
//
// TrainCtx is the ONE training entry point: algorithm selection is an
// option (WithConvexity; the default picks Algorithm 2 for strongly
// convex losses and Algorithm 1 otherwise), as are warm starts
// (WithWarmStart), gradient perturbation (WithGradPerturb) and the
// execution strategy. The legacy forms — Train and the per-algorithm
// PrivateConvexPSGD / PrivateStronglyConvexPSGD — remain as deprecated
// wrappers producing bit-identical results; new code should not use
// them.
//
// Data can live out of core: OpenStoreDir / AppendStoreSegment manage
// an append-only segment directory (immutable store files behind a
// CRC'd manifest with fail-closed ingest integrity checks) that trains
// in O(chunk) memory, and NewContinualTrainer retrains over a growing
// directory under one fixed total budget, one audited window per
// retrain — the online ingestion loop cmd/dpsgd exposes as -ingest /
// -online.
//
// The white-box baselines the paper compares against (SCS13, BST14),
// the Bismarck-style in-RDBMS substrate, the private tuning algorithm
// and the full experiment harness are re-exported alongside. See
// DESIGN.md for the system inventory (§6 for budget accounting and
// cancellation) and EXPERIMENTS.md for the paper-vs-measured record.
package boltondp

import (
	"context"
	"math/rand"

	"boltondp/internal/account"
	"boltondp/internal/account/compose"
	"boltondp/internal/baselines"
	"boltondp/internal/bismarck"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dist"
	"boltondp/internal/dp"
	"boltondp/internal/engine"
	"boltondp/internal/eval"
	"boltondp/internal/loss"
	"boltondp/internal/projection"
	"boltondp/internal/serve"
	"boltondp/internal/sgd"
	"boltondp/internal/store"
	"boltondp/internal/tuning"
)

// Core types, re-exported.
type (
	// Budget is an (ε, δ) differential-privacy budget; δ = 0 selects
	// pure ε-DP (Laplace-style noise), δ > 0 the Gaussian mechanism.
	Budget = dp.Budget
	// Samples is the read-only training-set view every trainer accepts.
	Samples = sgd.Samples
	// SparseSamples is the second tier of the data contract: sources
	// that hand out rows in sparse coordinate form. Trainers detect it
	// automatically and run the sparse-native kernel (O(nnz) per
	// example) whenever the loss supports it — implementing it is purely
	// an optimization, never a requirement.
	SparseSamples = sgd.SparseSamples
	// SparseDataset is a CSR-form labeled dataset implementing
	// SparseSamples — the right representation for one-hot-heavy and
	// text-like data.
	SparseDataset = data.SparseDataset
	// SparseStream is a lazily generated sparse dataset: rows are
	// derived from (seed, index) on access and never materialized.
	SparseStream = data.SparseStream
	// LossFunction is a convex per-example loss with its (L, β, γ)
	// constants.
	LossFunction = loss.Function
	// TrainOptions configures the private bolt-on trainers.
	TrainOptions = core.Options
	// TrainOption is a functional option for TrainCtx (WithBudget,
	// WithAccountant, WithStrategy, WithProgress, …).
	TrainOption = core.Option
	// TrainResult reports a private training run; only W is private.
	TrainResult = core.Result
	// TrainConvexity selects the algorithm TrainCtx runs (see
	// WithConvexity); the zero value picks from the loss's constants.
	TrainConvexity = core.Convexity
	// ContinualTrainer retrains over growing data under one fixed total
	// budget: the accountant's remainder is split into N windows up
	// front, every Retrain spends exactly one window warm-started from
	// the previous released model, and the (N+1)-th retrain fails
	// closed with ErrBudgetOverdraw before reading a single row.
	ContinualTrainer = core.ContinualTrainer
	// Accountant owns a total (ε, δ) privacy budget: every training run
	// that draws from it is debited in an auditable ledger, and a
	// request exceeding the remainder fails closed (ErrBudgetOverdraw)
	// before any training work.
	Accountant = account.Accountant
	// LedgerEntry is one audited spend in an Accountant's ledger.
	LedgerEntry = account.Entry
	// Ledger is the serializable accountant snapshot a released model
	// carries in its metadata (under LedgerMetaKey).
	Ledger = account.Ledger
	// BaselineOptions configures the comparison algorithms.
	BaselineOptions = baselines.Options
	// BaselineResult reports a baseline run.
	BaselineResult = baselines.Result
	// Dataset is an in-memory labeled dataset implementing Samples.
	Dataset = data.Dataset
	// Classifier predicts labels; see LinearClassifier and
	// OneVsAllClassifier.
	Classifier = eval.Classifier
	// LinearClassifier is sign(⟨w, x⟩).
	LinearClassifier = eval.Linear
	// OneVsAllClassifier is argmax_c ⟨w_c, x⟩.
	OneVsAllClassifier = eval.OneVsAll
	// TuningParams is a hyperparameter tuple (k, b, λ).
	TuningParams = tuning.Params
	// TuningResult reports a tuning run.
	TuningResult = tuning.Result
	// Projector is a Gaussian random projection for high-dimensional
	// data.
	Projector = projection.Projector
	// ExecutionStrategy selects how training runs execute (see
	// DESIGN.md §2): StrategySequential, StrategySharded or
	// StrategyStreaming, set through TrainOptions.Strategy/Workers.
	ExecutionStrategy = engine.Strategy
	// Stream is a lazily generated dataset for the streaming strategy:
	// rows are derived from (seed, index) on access and never
	// materialized.
	Stream = data.Stream
	// StoreReader is a random-access view of an on-disk columnar
	// dataset store (DESIGN.md §7). It implements Samples,
	// SparseSamples and the engine's sharding contract, so every
	// execution strategy trains straight from the file, holding one
	// chunk — not the dataset — in memory.
	StoreReader = store.Reader
	// StoreWriter streams labeled sparse rows into a store file in one
	// pass (row count and dimension need not be known up front).
	StoreWriter = store.Writer
	// StoreOptions configures store conversion (chunk geometry, class
	// count override).
	StoreOptions = store.Options
	// StoreDir is an append-only segment directory: immutable store
	// files behind a CRC'd manifest, trained as one logical dataset
	// (it implements Samples, SparseSamples and the sharding contract).
	// Grow it with AppendStoreSegment — ingest is fail-closed behind
	// dim / label-set / density invariants and full CRC verification.
	StoreDir = store.Dir
	// Table is the Bismarck-style page-organized table.
	Table = bismarck.Table
	// UDATrainConfig configures in-RDBMS training via the UDA
	// architecture.
	UDATrainConfig = bismarck.TrainConfig
	// UDATrainResult reports an in-RDBMS training run.
	UDATrainResult = bismarck.TrainResult
)

// Losses.

// NewLogisticLoss returns the (optionally L2-regularized) logistic loss
// of the paper's equation (1). For lambda > 0 the hypothesis radius
// defaults to 1/λ, the paper's convention.
func NewLogisticLoss(lambda float64) LossFunction { return loss.NewLogistic(lambda, 0) }

// NewHuberSVMLoss returns the smoothed hinge ("Huber SVM") loss with
// smoothing width h (the paper uses h = 0.1).
func NewHuberSVMLoss(h, lambda float64) LossFunction { return loss.NewHuber(h, lambda, 0) }

// Execution strategies for TrainOptions.Strategy, re-exported from the
// execution engine (internal/engine).
const (
	// StrategySequential is the paper's Algorithms 1–2 verbatim: one
	// goroutine, one permutation (the default).
	StrategySequential = engine.Sequential
	// StrategySharded trains TrainOptions.Workers disjoint shards in
	// parallel with per-epoch model averaging — the paper's multicore
	// bolt-on scheme. Noise is calibrated for the averaged model; for
	// strongly convex losses the bound equals the sequential one, so
	// parallelism is privacy-free.
	StrategySharded = engine.Sharded
	// StrategyStreaming trains in a single in-order pass with no
	// materialized permutation — the online scenario (pair it with
	// NewStream for never-materialized training data).
	StrategyStreaming = engine.Streaming
)

// ParseExecutionStrategy maps a CLI-style name
// (sequential|sharded|streaming) to an ExecutionStrategy.
func ParseExecutionStrategy(name string) (ExecutionStrategy, error) {
	return engine.ParseStrategy(name)
}

// NewStream builds a deterministic two-class streaming dataset of m
// rows in d dimensions: row i is regenerated from (seed, i) on every
// access, so StrategyStreaming can train over it in O(d) memory.
// Spread and Flip follow the synthetic-generator semantics (cluster
// standard deviation and label-noise probability).
func NewStream(seed int64, m, d int, spread, flip float64) *Stream {
	return data.NewStream(seed, m, d, spread, flip)
}

// Out-of-core dataset store (see DESIGN.md §7). A store file makes
// "the training set fits in RAM" a per-run choice: convert once with
// WriteStore (or stream rows through CreateStore), then train any
// strategy from OpenStore's reader. Training from a store is
// bit-identical to training from the source it was written from —
// sensitivity calibration never depends on the representation.

// OpenStore opens an on-disk columnar dataset store for training or
// scoring. The reader fails closed: any corruption (bad checksum,
// truncation, invalid CSR geometry) is an error, never silently wrong
// rows.
func OpenStore(path string) (*StoreReader, error) { return store.Open(path) }

// WriteStore converts any sparse-tier sample source into a store file
// in one sequential pass, preserving row order and exact value bits.
func WriteStore(path string, src SparseSamples, opt StoreOptions) error {
	return store.Write(path, src, opt)
}

// CreateStore opens a store file for streaming row-at-a-time
// conversion (Append rows, then Close); neither the row count nor the
// dimension needs to be known up front.
func CreateStore(path string, opt StoreOptions) (*StoreWriter, error) {
	return store.Create(path, opt)
}

// Segment directories (see DESIGN.md §12): the growing form of the
// store. New data arrives as whole immutable segments, visibility is a
// manifest commit, and training over the union is bit-identical to
// training over one concatenated file.

// OpenStoreDir opens a segment directory as one logical dataset. Like
// OpenStore it fails closed: a manifest/CRC mismatch or cross-segment
// disagreement (dim, label set) is an error, never silently wrong rows.
func OpenStoreDir(dir string) (*StoreDir, error) { return store.OpenDir(dir) }

// AppendStoreSegment appends src as a new immutable segment of dir
// (creating the directory on first use) and returns the segment's file
// name. The segment becomes visible only after it passes the
// fail-closed integrity gate — structural and payload CRCs plus the
// directory's dim / label-set / density invariants; on any failure the
// directory is exactly as before.
func AppendStoreSegment(dir string, src SparseSamples, opt StoreOptions) (string, error) {
	return store.AppendSegment(dir, src, opt)
}

// CompactStoreDir merges runs of adjacent segments smaller than
// minRows into consolidated segments, bit-identical for training (row
// order, value bits, and every strategy's output are pinned unchanged).
// It returns the segment counts before and after.
func CompactStoreDir(dir string, minRows int) (before, after int, err error) {
	return store.Compact(dir, minRows)
}

// Budget accounting (see DESIGN.md §6).

// ErrBudgetOverdraw is wrapped by every reservation an Accountant
// refuses because it would exceed the remaining budget; test with
// errors.Is. The refused computation never runs.
var ErrBudgetOverdraw = account.ErrOverdraw

// LedgerMetaKey is the model-metadata key under which an accountant's
// ledger is persisted (SaveClassifier files, registry models, /modelz).
const LedgerMetaKey = account.MetaKey

// NewAccountant returns an accountant owning the given total budget.
// Draw training spends from it with WithAccountant, split it across
// composite workflows (one-vs-all classes, tuning candidates) with
// Accountant.Split, and stamp its ledger into released-model metadata
// with Accountant.StampMeta.
func NewAccountant(total Budget) (*Accountant, error) { return account.New(total) }

// Composition rules an Accountant can price reservations under (see
// DESIGN.md §11): AccountingSimple is linear (ε, δ) summation — the
// default and the pre-existing behavior, bit-identical ledgers;
// AccountingAdvanced composes heterogeneous releases by the
// Kairouz–Oh–Viswanath bound; AccountingRDP tracks per-order Rényi
// curves and converts to (ε, δ) only at spend time — the tightest rule,
// and the one per-step gradient perturbation is priced under.
const (
	AccountingSimple   = compose.RuleSimple
	AccountingAdvanced = compose.RuleAdvanced
	AccountingRDP      = compose.RuleRDP
)

// NewAccountantWithRule returns an accountant whose reservations are
// priced under the named composition rule ("simple", "advanced",
// "rdp"; "" means simple). The rule travels in the ledger and through
// model metadata, so a served model's /modelz record states which
// composition theorem justified its spend.
func NewAccountantWithRule(rule string, total Budget) (*Accountant, error) {
	return account.NewWithRule(rule, total)
}

// ParseLedger decodes a ledger serialized by Accountant.StampMeta.
func ParseLedger(s string) (*Ledger, error) { return account.ParseLedger(s) }

// RestoreAccountant rebuilds a live accountant from a ledger — the
// resume path for continual training across process restarts: read the
// published model's ledger with LedgerFromMeta, restore, and hand the
// result to NewContinualTrainer. The replay is fail-closed: a ledger
// whose recorded spends exceed its stated total, or whose arithmetic
// does not reproduce under its own composition rule, is rejected.
func RestoreAccountant(l *Ledger) (*Accountant, error) { return account.Restore(l) }

// LedgerFromMeta extracts the ledger a model-metadata map carries; ok
// is false when the model was not published through an accountant.
func LedgerFromMeta(meta map[string]string) (l *Ledger, ok bool, err error) {
	return account.LedgerFromMeta(meta)
}

// Training.

// TrainCtx is THE training entry point: bolt-on private PSGD
// (Algorithm 2 when the loss is strongly convex, Algorithm 1
// otherwise — override with WithConvexity), configured by functional
// options and cancellable through ctx — every execution strategy polls
// the context once per mini-batch update, so cancellation or deadline
// expiry stops the run within one epoch slice with ctx.Err().
//
// Every other training form in this package (Train, PrivateConvexPSGD,
// PrivateStronglyConvexPSGD) is a deprecated equivalent of a TrainCtx
// call, kept bit-identical for existing callers.
func TrainCtx(ctx context.Context, s Samples, f LossFunction, opts ...TrainOption) (*TrainResult, error) {
	return core.TrainCtx(ctx, s, f, opts...)
}

// Algorithm selectors for WithConvexity.
const (
	// ConvexityAuto (the default) picks Algorithm 2 when the loss's
	// constants state strong convexity (γ > 0), Algorithm 1 otherwise.
	ConvexityAuto = core.ConvexityAuto
	// ConvexityConvex forces Algorithm 1 (valid for every convex loss,
	// including strongly convex ones — the bound is just looser).
	ConvexityConvex = core.ConvexityConvex
	// ConvexityStronglyConvex forces Algorithm 2 (requires γ > 0;
	// training fails closed otherwise).
	ConvexityStronglyConvex = core.ConvexityStronglyConvex
)

// WithConvexity pins which of the paper's two algorithms TrainCtx
// runs, instead of deriving it from the loss's constants.
func WithConvexity(c TrainConvexity) TrainOption { return core.WithConvexity(c) }

// WithWarmStart starts the SGD iterate sequence from w0 (a copy)
// instead of the origin. Warm starts are privacy-free when w0 is a
// previously RELEASED private model (post-processing); the noise is
// always calibrated to the full sensitivity of the new run.
func WithWarmStart(w0 []float64) TrainOption { return core.WithWarmStart(w0) }

// WithBudget sets the privacy budget the released model is calibrated
// to. Combined with WithAccountant the budget is reserved (fail-closed)
// against the accountant before training.
func WithBudget(b Budget) TrainOption { return core.WithBudget(b) }

// WithAccountant attaches the privacy-budget accountant the run draws
// from; without WithBudget the entire remaining budget is drawn.
func WithAccountant(a *Accountant) TrainOption { return core.WithAccountant(a) }

// WithSpendLabel names the run's entry in the accountant's ledger
// (default "train(<loss name>)").
func WithSpendLabel(label string) TrainOption { return core.WithSpendLabel(label) }

// WithPasses sets k, the number of passes over the data.
func WithPasses(k int) TrainOption { return core.WithPasses(k) }

// WithBatch sets the mini-batch size b.
func WithBatch(b int) TrainOption { return core.WithBatch(b) }

// WithRadius constrains the hypothesis space to the L2 ball of radius
// r (the paper uses R = 1/λ for strongly convex losses).
func WithRadius(r float64) TrainOption { return core.WithRadius(r) }

// WithStrategy selects the execution strategy and its worker count
// (workers only matters for StrategySharded).
func WithStrategy(s ExecutionStrategy, workers int) TrainOption {
	return core.WithStrategy(s, workers)
}

// WithRand sets the randomness source for permutations, worker seeds
// and the privacy noise.
func WithRand(r *rand.Rand) TrainOption { return core.WithRand(r) }

// WithProgress installs a per-epoch observability hook: fn receives
// the 1-based epoch number and the empirical risk of the current
// pre-noise iterate. The risk values are NOT private — log them on the
// trusted side only, never release them under the run's budget.
// Incompatible with WithGradPerturb, whose iterates are released as
// they are produced: the exact risk would leak outside the budget.
func WithProgress(fn func(epoch int, risk float64)) TrainOption { return core.WithProgress(fn) }

// WithTrainOptions seeds the run from a full TrainOptions value — the
// escape hatch for fields without a dedicated option (step family,
// averaging, Tol, …). Place it before the other options.
func WithTrainOptions(base TrainOptions) TrainOption { return core.WithOptions(base) }

// WithAccounting names the composition rule the run is priced under
// (AccountingSimple, AccountingAdvanced, AccountingRDP). With an
// accountant attached the two must agree.
func WithAccounting(rule string) TrainOption { return core.WithAccounting(rule) }

// WithGradPerturb switches training to the gradient-perturbation
// strategy (DP-SGD): per-example gradients clipped to clip, Gaussian
// noise at multiplier noiseMultiplier (σ̃, in units of the 2·clip
// sensitivity) added to every summed mini-batch gradient, and the cost
// accounted per step through the subsampled-Gaussian machinery (default
// rule AccountingRDP). Pass noiseMultiplier = 0 to solve the smallest
// σ̃ that fits the budget. Sequential-only; needs δ > 0.
func WithGradPerturb(clip, noiseMultiplier float64) TrainOption {
	return core.WithGradPerturb(clip, noiseMultiplier)
}

// Train runs the bolt-on private PSGD appropriate for the loss.
//
// Deprecated: use TrainCtx with functional options (bit-identical;
// WithTrainOptions(opt) carries a full TrainOptions over).
func Train(s Samples, f LossFunction, opt TrainOptions) (*TrainResult, error) {
	return core.Train(s, f, opt)
}

// PrivateConvexPSGD is Algorithm 1 of the paper (convex losses).
//
// Deprecated: use TrainCtx with WithConvexity(ConvexityConvex)
// (bit-identical).
func PrivateConvexPSGD(s Samples, f LossFunction, opt TrainOptions) (*TrainResult, error) {
	return core.PrivateConvexPSGD(s, f, opt)
}

// PrivateStronglyConvexPSGD is Algorithm 2 (strongly convex losses).
//
// Deprecated: use TrainCtx with WithConvexity(ConvexityStronglyConvex)
// (bit-identical).
func PrivateStronglyConvexPSGD(s Samples, f LossFunction, opt TrainOptions) (*TrainResult, error) {
	return core.PrivateStronglyConvexPSGD(s, f, opt)
}

// Continual training (see DESIGN.md §12).

// NewContinualTrainer builds a continual trainer drawing windows equal
// shares of acct's current remainder; base options apply to every
// window's run (budget, accountant, spend label and warm start are
// managed by the trainer and always win). An accountant restored from
// a ledger already carrying window spends resumes the sequence instead
// of re-splitting.
func NewContinualTrainer(acct *Accountant, windows int, f LossFunction, base ...TrainOption) (*ContinualTrainer, error) {
	return core.NewContinualTrainer(acct, windows, f, base...)
}

// NewContinualRDP is NewContinualTrainer over a fresh AccountingRDP
// accountant owning total — the default configuration of the online
// retraining loop (the rdp rule prices a window sequence tightest).
func NewContinualRDP(total Budget, windows int, f LossFunction, base ...TrainOption) (*ContinualTrainer, error) {
	return core.NewContinualRDP(total, windows, f, base...)
}

// Baselines.

// NoiselessSGD runs plain permutation-based SGD (no privacy).
func NoiselessSGD(s Samples, f LossFunction, opt BaselineOptions) (*BaselineResult, error) {
	return baselines.Noiseless(s, f, opt)
}

// SCS13 runs the per-iteration-noise baseline of Song, Chaudhuri and
// Sarwate (2013).
func SCS13(s Samples, f LossFunction, opt BaselineOptions) (*BaselineResult, error) {
	return baselines.SCS13(s, f, opt)
}

// BST14 runs the paper's constant-epoch extension of Bassily, Smith
// and Thakurta (2014). Requires δ > 0 and a positive Radius.
func BST14(s Samples, f LossFunction, opt BaselineOptions) (*BaselineResult, error) {
	return baselines.BST14(s, f, opt)
}

// Evaluation.

// Accuracy returns the fraction of s that c classifies correctly.
func Accuracy(s Samples, c Classifier) float64 { return eval.Accuracy(s, c) }

// TrainOneVsAll builds a multiclass model from per-class binary
// trainers; callers should split the privacy budget across classes —
// preferably with Accountant.Split (enforced), or with Budget.Split
// (caller-trusted).
func TrainOneVsAll(s Samples, classes int, train eval.BinaryTrainer) (*OneVsAllClassifier, error) {
	return eval.TrainOneVsAll(s, classes, train)
}

// TrainOneVsAllCtx is TrainOneVsAll made cancellable: ctx is checked
// before each per-class run (and inside each run when the trainer uses
// TrainCtx with the same ctx).
func TrainOneVsAllCtx(ctx context.Context, s Samples, classes int, train eval.BinaryTrainer) (*OneVsAllClassifier, error) {
	return eval.TrainOneVsAllCtx(ctx, s, classes, train)
}

// SaveClassifier writes a trained classifier to path as JSON; pass
// metadata (ε, δ, loss, sensitivity) so the model file carries its own
// privacy statement.
func SaveClassifier(path string, c Classifier, meta map[string]string) error {
	return eval.SaveClassifier(path, c, meta)
}

// LoadClassifier reads a classifier written by SaveClassifier.
func LoadClassifier(path string) (Classifier, map[string]string, error) {
	return eval.LoadClassifier(path)
}

// Serving (see DESIGN.md §5).

type (
	// ModelRegistry holds named trained-model versions persisted via
	// SaveClassifier's format, with an atomically hot-swappable live
	// model — the deployment artifact the paper trains in-RDBMS to
	// produce.
	ModelRegistry = serve.Registry
	// ServedModel is one immutable published model version.
	ServedModel = serve.Model
	// ModelServer is the HTTP prediction service over a registry:
	// POST /predict, POST /predict/batch (sparse rows scored at
	// O(rows·classes·nnz)), GET /healthz, GET /modelz.
	ModelServer = serve.Server
	// ServeOptions tunes the prediction service (batch-scoring
	// workers, batch and body caps).
	ServeOptions = serve.Config
	// ServeRow is the wire form of one example: dense "x" or sparse
	// coordinate "idx"/"val".
	ServeRow = serve.Row
)

// NewModelRegistry opens (or creates) the model registry rooted at
// dir, loading every model already published into it; dir == "" gives
// an in-memory registry. Train-and-publish in three lines:
//
//	res, _ := boltondp.Train(train, f, opt)
//	reg, _ := boltondp.NewModelRegistry("registry")
//	reg.Publish("fraud", &boltondp.LinearClassifier{W: res.W}, meta)
//
// and serve it with NewModelServer (or cmd/dpserve).
func NewModelRegistry(dir string) (*ModelRegistry, error) { return serve.NewRegistry(dir) }

// NewModelServer builds the HTTP prediction service over a registry;
// mount NewModelServer(reg, opt).Handler() on any http server.
func NewModelServer(reg *ModelRegistry, opt ServeOptions) *ModelServer { return serve.New(reg, opt) }

// Distributed training (see DESIGN.md §8).

type (
	// DistCoordinator drives distributed sharded training over a pool
	// of registered DistWorkers, bit-identical to the in-process
	// Sharded strategy under the same seed.
	DistCoordinator = dist.Coordinator
	// DistCoordinatorConfig tunes the coordinator's HTTP behavior and
	// failure policy (retries, backoff, per-call deadlines).
	DistCoordinatorConfig = dist.CoordinatorConfig
	// DistWorker executes shard assignments; mount its Handler() on any
	// http server (or run cmd/dpworker).
	DistWorker = dist.Worker
	// DistSource is the coordinator-side training-set description a
	// distributed run partitions: NewDistStoreSource for on-disk store
	// files (workers open the same path and verify chunk CRCs),
	// NewDistInlineSource for in-memory samples shipped inline.
	DistSource = dist.Source
)

// NewDistCoordinator returns a coordinator with no registered workers;
// call Register with each worker's base URL before training.
func NewDistCoordinator(cfg DistCoordinatorConfig) *DistCoordinator { return dist.NewCoordinator(cfg) }

// NewDistWorker returns an empty distributed-training worker.
func NewDistWorker() *DistWorker { return dist.NewWorker() }

// NewDistStoreSource describes a store-file training set for
// distributed runs. Workers must be able to open the same path.
func NewDistStoreSource(r *StoreReader) DistSource { return dist.NewStoreSource(r) }

// NewDistInlineSource describes an in-memory training set whose shards
// are shipped to workers inline over the wire.
func NewDistInlineSource(s Samples) DistSource { return dist.NewInlineSource(s) }

// TrainDistributed is TrainCtx on a coordinator/worker pool: the same
// functional options (WithStrategy(StrategySharded, P) selects the
// shard count), the same calibration, and — by the parity contract
// pinned in internal/dist — the same bits in the released model and the
// accountant ledger as the single-process run under the same seed.
func TrainDistributed(ctx context.Context, coord *DistCoordinator, src DistSource, f LossFunction, opts ...TrainOption) (*TrainResult, error) {
	return core.TrainDistributed(ctx, coord, src, f, opts...)
}

// Tuning.

// PaperTuningGrid is the §4.3 grid: k ∈ {5, 10}, b = 50,
// λ ∈ {1e-4, 1e-3, 1e-2}.
func PaperTuningGrid() []TuningParams { return tuning.PaperGrid() }

// PrivateTune is the private hyperparameter tuner (Algorithm 3).
func PrivateTune(d *Dataset, grid []TuningParams, budget Budget, train tuning.TrainFunc, r *rand.Rand) (*TuningResult, error) {
	return tuning.Private(d, grid, budget, train, r)
}

// PrivateTuneCtx is PrivateTune made cancellable and accountable: ctx
// is checked before each candidate's training run, and when acct is
// non-nil the tuner's own spend — the ε of the exponential-mechanism
// pick — is reserved against it (fail-closed) before any work. Pass a
// TrainFunc built from a TrainOptions carrying the same ctx (e.g. via
// TrainCtx inside the closure) to make the candidate runs themselves
// cancellable too.
func PrivateTuneCtx(ctx context.Context, d *Dataset, grid []TuningParams, budget Budget, acct *Accountant, train tuning.TrainFunc, r *rand.Rand) (*TuningResult, error) {
	return tuning.PrivateCtx(ctx, d, grid, budget, acct, train, r)
}

// PublicTune tunes against a public validation set (§4.1).
func PublicTune(train, public *Dataset, grid []TuningParams, fit tuning.TrainFunc) (*TuningResult, error) {
	return tuning.Public(train, public, grid, fit)
}

// EngineTuningTrainFunc adapts Train (and through it the execution
// engine) into a tuning TrainFunc for binary linear models: each grid
// tuple's (k, b) become Passes/Batch, λ parameterizes the loss, and
// base carries everything else — budget, strategy, randomness, and
// (for PrivateTuneCtx) the context and accountant each candidate draws
// from.
func EngineTuningTrainFunc(newLoss func(lambda float64) LossFunction, base TrainOptions) tuning.TrainFunc {
	return tuning.EngineTrainFunc(newLoss, base)
}

// Data.

// LoadLIBSVM reads a LIBSVM/SVMlight format file.
func LoadLIBSVM(path string, dim int) (*Dataset, error) { return data.LoadLIBSVM(path, dim) }

// LoadLIBSVMSparse reads a LIBSVM file directly into CSR form without
// materializing dense rows — the right loader for high-dimensional
// sparse data; training on the result automatically uses the
// sparse-native kernel.
func LoadLIBSVMSparse(path string, dim int) (*SparseDataset, error) {
	return data.LoadLIBSVMSparse(path, dim)
}

// KDDSimSparse generates the KDDCup-99 simulation in its natural
// one-hot sparse encoding (~10% density, d = 122); see DESIGN.md §4.
func KDDSimSparse(r *rand.Rand, scale float64) (train, test *SparseDataset) {
	return data.KDDSimSparse(r, scale)
}

// NewSparseStream builds a deterministic two-class sparse streaming
// dataset: m rows in d dimensions with nnz active coordinates each,
// regenerated from (seed, i) on every access.
func NewSparseStream(seed int64, m, d, nnz int, flip float64) *SparseStream {
	return data.NewSparseStream(seed, m, d, nnz, flip)
}

// MNISTSim, ProteinSim, CovtypeSim, HIGGSSim and KDDSim generate the
// paper's benchmark datasets (simulated; see DESIGN.md §4) at the given
// scale (1.0 = the paper's full size).
func MNISTSim(r *rand.Rand, scale float64) (train, test *Dataset)   { return data.MNISTSim(r, scale) }
func ProteinSim(r *rand.Rand, scale float64) (train, test *Dataset) { return data.ProteinSim(r, scale) }
func CovtypeSim(r *rand.Rand, scale float64) (train, test *Dataset) { return data.CovtypeSim(r, scale) }
func HIGGSSim(r *rand.Rand, scale float64) (train, test *Dataset)   { return data.HIGGSSim(r, scale) }
func KDDSim(r *rand.Rand, scale float64) (train, test *Dataset)     { return data.KDDSim(r, scale) }

// NewProjection samples a Gaussian random projection from dimension d
// down to p (the paper projects MNIST 784 → 50).
func NewProjection(r *rand.Rand, d, p int) *Projector { return projection.New(r, d, p) }

// In-RDBMS (Bismarck-style) substrate.

// NewMemTable creates an in-memory page-organized table.
func NewMemTable(name string, d int) *Table { return bismarck.NewMemTable(name, d) }

// CreateDiskTable creates a file-backed table whose buffer pool holds
// poolPages pages; pools smaller than the table force real file I/O.
func CreateDiskTable(path string, d, poolPages int) (*Table, error) {
	return bismarck.CreateDiskTable(path, d, poolPages)
}

// TrainInRDBMS trains through the UDA architecture (Figure 1),
// supporting all four integrations: bismarck.Noiseless,
// bismarck.OutputPerturb, bismarck.AlgSCS13 and bismarck.AlgBST14.
func TrainInRDBMS(t *Table, f LossFunction, cfg UDATrainConfig) (*UDATrainResult, error) {
	return bismarck.TrainUDA(t, f, cfg)
}

// Algorithm selectors for UDATrainConfig, re-exported.
const (
	UDANoiseless     = bismarck.Noiseless
	UDAOutputPerturb = bismarck.OutputPerturb
	UDASCS13         = bismarck.AlgSCS13
	UDABST14         = bismarck.AlgBST14
)

// Parallel (shared-nothing) training.

type (
	// ParallelTrainConfig configures shared-nothing parallel training:
	// P independent per-partition SGD aggregates merged by model
	// averaging, Bismarck/MapReduce style.
	ParallelTrainConfig = bismarck.ParallelTrainConfig
	// ParallelTrainResult reports a parallel run.
	ParallelTrainResult = bismarck.ParallelTrainResult
	// SVRGConfig configures the variance-reduced optimizer.
	SVRGConfig = sgd.SVRGConfig
)

// ParallelTrainInRDBMS partitions the table across Workers goroutines,
// trains a PSGD model per partition with per-epoch model averaging
// (the execution engine's Sharded strategy), and (for UDAOutputPerturb)
// perturbs once with the parallel sensitivity Δ_part(m/P)/P — which for
// strongly convex losses equals the sequential bound, making
// parallelism privacy-free.
//
// Deprecated: kept as a thin wrapper for the in-RDBMS deployment
// story. New code should call Train with TrainOptions{Strategy:
// StrategySharded, Workers: P}, which accepts a *Table (or any
// Samples) directly; see examples/parallel.
func ParallelTrainInRDBMS(t *Table, f LossFunction, cfg ParallelTrainConfig) (*ParallelTrainResult, error) {
	return bismarck.ParallelTrainUDA(t, f, cfg)
}

// RunSVRG runs the (noiseless) variance-reduced SVRG optimizer — a
// non-adaptive algorithm in the sense of the paper's Definition 7 and
// its stated future-work direction for output perturbation. No privacy
// calibration is returned; see the sgd package docs.
func RunSVRG(s Samples, cfg SVRGConfig) (*sgd.Result, error) {
	return sgd.RunSVRG(s, cfg)
}
