package boltondp

// Tests of the public facade: everything a downstream user calls must
// work end-to-end through the exported API alone.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeTrainPrivate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Parameters sized for the sound (b-independent) sensitivity: the
	// noise 74·Δ₂/ε stays well below the model scale at γm ≈ 360.
	train, test := ProteinSim(r, 0.1)
	lambda := 0.05
	res, err := Train(train, NewLogisticLoss(lambda), TrainOptions{
		Budget: Budget{Epsilon: 1},
		Passes: 5, Batch: 50, Radius: 1 / lambda, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(test, &LinearClassifier{W: res.W})
	if acc < 0.6 {
		t.Errorf("private accuracy %v on protein-sim at ε=1", acc)
	}
	if res.Sensitivity <= 0 || res.NoiseNorm <= 0 {
		t.Error("missing sensitivity/noise report")
	}
}

func TestFacadeAlgorithmVariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	train, _ := KDDSim(r, 0.01)
	f := NewLogisticLoss(0.01)
	if _, err := PrivateStronglyConvexPSGD(train, f, TrainOptions{
		Budget: Budget{Epsilon: 1}, Rand: r,
	}); err != nil {
		t.Error(err)
	}
	if _, err := PrivateConvexPSGD(train, NewLogisticLoss(0), TrainOptions{
		Budget: Budget{Epsilon: 1}, Rand: r,
	}); err != nil {
		t.Error(err)
	}
	if _, err := NoiselessSGD(train, f, BaselineOptions{Rand: r}); err != nil {
		t.Error(err)
	}
	if _, err := SCS13(train, f, BaselineOptions{Budget: Budget{Epsilon: 1}, Rand: r}); err != nil {
		t.Error(err)
	}
	if _, err := BST14(train, f, BaselineOptions{
		Budget: Budget{Epsilon: 1, Delta: 1e-6}, Radius: 100, Rand: r,
	}); err != nil {
		t.Error(err)
	}
}

func TestFacadeHuberLoss(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	train, test := ProteinSim(r, 0.02)
	res, err := Train(train, NewHuberSVMLoss(0.1, 0.01), TrainOptions{
		Budget: Budget{Epsilon: 1}, Passes: 5, Batch: 50, Radius: 100, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(test, &LinearClassifier{W: res.W}); acc < 0.6 {
		t.Errorf("huber private accuracy %v", acc)
	}
}

func TestFacadeMulticlassWithProjection(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rawTrain, rawTest := MNISTSim(r, 0.02)
	proj := NewProjection(r, 784, 50)
	train := &Dataset{Name: "p", Classes: 10, Y: rawTrain.Y}
	for _, x := range rawTrain.X {
		train.X = append(train.X, proj.Apply(x))
	}
	test := &Dataset{Name: "pt", Classes: 10, Y: rawTest.Y}
	for _, x := range rawTest.X {
		test.X = append(test.X, proj.Apply(x))
	}
	per := Budget{Epsilon: 10}.Split(10)
	if per.Epsilon != 1 {
		t.Fatalf("Split: %v", per)
	}
	lambda := 0.05
	model, err := TrainOneVsAll(train, 10, func(view Samples, class int) ([]float64, error) {
		res, err := Train(view, NewLogisticLoss(lambda), TrainOptions{
			Budget: per, Passes: 5, Batch: 50, Radius: 1 / lambda, Rand: r,
			// The tiny test-scale m makes the sound bound's noise
			// dominate; the paper calibration keeps this a wiring test
			// rather than a utility test.
			PaperBatchSensitivity: true,
		})
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(test, model); acc < 0.5 {
		t.Errorf("multiclass private accuracy %v at ε=10", acc)
	}
}

func TestFacadeTuning(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	train, test := KDDSim(r, 0.02)
	budget := Budget{Epsilon: 1}
	fit := func(part *Dataset, p TuningParams) (Classifier, error) {
		res, err := Train(part, NewLogisticLoss(p.Lambda), TrainOptions{
			Budget: budget, Passes: p.K, Batch: p.B, Radius: 1 / p.Lambda, Rand: r,
		})
		if err != nil {
			return nil, err
		}
		return &LinearClassifier{W: res.W}, nil
	}
	priv, err := PrivateTune(train, PaperTuningGrid(), budget, fit, r)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(test, priv.Model); acc < 0.6 {
		t.Errorf("privately tuned accuracy %v", acc)
	}
	pub, err := PublicTune(train, test, PaperTuningGrid(), fit)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Model == nil {
		t.Error("nil publicly tuned model")
	}
}

func TestFacadeRDBMS(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	train, test := CovtypeSim(r, 0.005)
	lambda := 0.05
	f := NewLogisticLoss(lambda)

	mem := NewMemTable("t", train.Dim())
	if err := mem.InsertAll(train); err != nil {
		t.Fatal(err)
	}
	res, err := TrainInRDBMS(mem, f, UDATrainConfig{
		Algorithm: UDAOutputPerturb,
		Budget:    Budget{Epsilon: 1},
		Passes:    3, Batch: 10, Radius: 1 / lambda,
		Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(test, &LinearClassifier{W: res.W}); acc < 0.55 {
		t.Errorf("in-RDBMS private accuracy %v", acc)
	}

	disk, err := CreateDiskTable(filepath.Join(t.TempDir(), "t.tbl"), train.Dim(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Remove()
	if err := disk.InsertAll(train); err != nil {
		t.Fatal(err)
	}
	dres, err := TrainInRDBMS(disk, f, UDATrainConfig{
		Algorithm: UDANoiseless, Passes: 2, Batch: 10, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats.Reads == 0 {
		t.Error("disk training reported no page reads")
	}
}

func TestFacadeLIBSVMRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	train, _ := ProteinSim(r, 0.002)
	path := filepath.Join(t.TempDir(), "x.libsvm")
	// SaveLIBSVM is internal; exercise the public loader against a file
	// we write through the internal package via a tiny inline fixture.
	if err := writeLIBSVMFixture(path, train); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLIBSVM(path, train.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != train.Len() || got.Dim() != train.Dim() {
		t.Errorf("loaded %dx%d, want %dx%d", got.Len(), got.Dim(), train.Len(), train.Dim())
	}
}

func TestFacadeNoiseScalesWithEpsilon(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	train, _ := ProteinSim(r, 0.02)
	lambda := 0.01
	noise := func(eps float64) float64 {
		var sum float64
		for i := 0; i < 10; i++ {
			res, err := Train(train, NewLogisticLoss(lambda), TrainOptions{
				Budget: Budget{Epsilon: eps}, Passes: 2, Batch: 50,
				Radius: 1 / lambda, Rand: r,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.NoiseNorm
		}
		return sum / 10
	}
	if n1, n2 := noise(0.01), noise(1); n2 >= n1 {
		t.Errorf("noise at ε=1 (%v) should be below ε=0.01 (%v)", n2, n1)
	}
}

func TestFacadeSimulatorShapes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand, float64) (*Dataset, *Dataset)
		dim  int
	}{
		{"mnist", MNISTSim, 784},
		{"protein", ProteinSim, 74},
		{"covtype", CovtypeSim, 54},
		{"higgs", HIGGSSim, 28},
		{"kdd", KDDSim, 41},
	} {
		train, test := tc.gen(r, 0.002)
		if train.Dim() != tc.dim {
			t.Errorf("%s: dim %d, want %d", tc.name, train.Dim(), tc.dim)
		}
		if train.Len() == 0 || test.Len() == 0 {
			t.Errorf("%s: empty split", tc.name)
		}
		if train.MaxNorm() > 1+1e-12 {
			t.Errorf("%s: max norm %v", tc.name, train.MaxNorm())
		}
	}
}

func TestFacadeParallelTraining(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	train, test := CovtypeSim(r, 0.01)
	lambda := 0.05
	f := NewLogisticLoss(lambda)
	tab := NewMemTable("p", train.Dim())
	if err := tab.InsertAll(train); err != nil {
		t.Fatal(err)
	}
	res, err := ParallelTrainInRDBMS(tab, f, ParallelTrainConfig{
		Workers:   4,
		Algorithm: UDAOutputPerturb,
		Budget:    Budget{Epsilon: 1},
		Passes:    3, Batch: 10, Radius: 1 / lambda,
		Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartModels) != 4 {
		t.Fatalf("%d partition models", len(res.PartModels))
	}
	if res.Sensitivity <= 0 {
		t.Error("no sensitivity reported")
	}
	if acc := Accuracy(test, &LinearClassifier{W: res.W}); acc < 0.55 {
		t.Errorf("parallel private accuracy %v", acc)
	}
}

func TestFacadeSVRG(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	train, test := ProteinSim(r, 0.01)
	f := NewLogisticLoss(0.01)
	res, err := RunSVRG(train, SVRGConfig{
		Loss: f, Eta: 0.05, Epochs: 5, Radius: 100,
		Rand: rand.New(rand.NewSource(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(test, &LinearClassifier{W: res.W}); acc < 0.8 {
		t.Errorf("SVRG accuracy %v on protein-sim", acc)
	}
}

// TestFacadeTrainPublishServe walks the deployment story end to end
// through the exported API alone: train a private model, publish it
// into a registry directory, reopen the registry as a serving process
// would, and score through the HTTP service.
func TestFacadeTrainPublishServe(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	train, test := KDDSimSparse(r, 0.005)
	lambda := 0.05
	res, err := Train(train, NewLogisticLoss(lambda), TrainOptions{
		Budget: Budget{Epsilon: 2},
		Passes: 3, Batch: 50, Radius: 1 / lambda, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	reg, err := NewModelRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("kdd", &LinearClassifier{W: res.W}, map[string]string{"epsilon": "2"}); err != nil {
		t.Fatal(err)
	}

	// A fresh registry (the dpserve process) sees the published model.
	reg2, err := NewModelRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	live := reg2.Live()
	if live == nil || live.Name != "kdd" || live.Meta["epsilon"] != "2" {
		t.Fatalf("reloaded live model %+v", live)
	}

	srv := httptest.NewServer(NewModelServer(reg2, ServeOptions{Workers: 2}).Handler())
	defer srv.Close()

	// Batch-score the sparse test rows over the wire and compare with
	// local scoring.
	n := 64
	if n > test.Len() {
		n = test.Len()
	}
	rows := make([]ServeRow, n)
	want := make([]float64, n)
	local := &LinearClassifier{W: res.W}
	for i := 0; i < n; i++ {
		sp, _ := test.AtSparse(i)
		rows[i] = ServeRow{Idx: append([]int(nil), sp.Idx...), Val: append([]float64(nil), sp.Val...)}
		want[i] = local.PredictSparse(sp)
	}
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Model  string    `json:"model"`
		Labels []float64 `json:"labels"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "kdd" || len(out.Labels) != n {
		t.Fatalf("batch response model=%q labels=%d", out.Model, len(out.Labels))
	}
	for i, l := range out.Labels {
		if l != want[i] {
			t.Fatalf("row %d: served %v, local %v", i, l, want[i])
		}
	}
}

// writeLIBSVMFixture emits the dataset in LIBSVM format without using
// the internal writer, keeping this test purely about the public API.
func writeLIBSVMFixture(path string, d *Dataset) error {
	var b strings.Builder
	for i := 0; i < d.Len(); i++ {
		x, y := d.At(i)
		fmt.Fprintf(&b, "%g", y)
		for j, v := range x {
			if v != 0 {
				fmt.Fprintf(&b, " %d:%g", j+1, v)
			}
		}
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// The accountant-era primary path end to end, all through the facade:
// NewAccountant → TrainCtx(WithAccountant, WithProgress) → StampMeta →
// registry publish → /modelz carries a parseable ledger; then the
// exhausted accountant fails closed and a cancelled context stops a
// run mid-epoch.
func TestFacadeAccountantTrainPublishModelz(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	train, test := ProteinSim(r, 0.1)
	lambda := 0.05

	acct, err := NewAccountant(Budget{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	res, err := TrainCtx(context.Background(), train, NewLogisticLoss(lambda),
		WithAccountant(acct),
		WithPasses(5), WithBatch(50), WithRadius(1/lambda),
		WithProgress(func(epoch int, risk float64) { epochs++ }),
		WithRand(r))
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 5 {
		t.Errorf("progress epochs = %d, want 5", epochs)
	}
	if acc := Accuracy(test, &LinearClassifier{W: res.W}); acc < 0.6 {
		t.Errorf("private accuracy %v", acc)
	}
	if rem := acct.Remaining(); rem.Epsilon != 0 {
		t.Errorf("accountant not drained: %v", rem)
	}

	// The exhausted accountant refuses a second model: fail closed.
	if _, err := TrainCtx(context.Background(), train, NewLogisticLoss(lambda),
		WithAccountant(acct), WithBudget(Budget{Epsilon: 0.1}),
		WithPasses(1), WithBatch(50), WithRadius(1/lambda), WithRand(r),
	); !errors.Is(err, ErrBudgetOverdraw) {
		t.Fatalf("second draw err = %v, want ErrBudgetOverdraw", err)
	}

	// Publish with the stamped ledger and read it back through /modelz.
	meta := map[string]string{"loss": "logistic"}
	if err := acct.StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	reg, err := NewModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("protein", &LinearClassifier{W: res.W}, meta); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewModelServer(reg, ServeOptions{}).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/modelz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mz struct {
		Models []struct {
			Meta map[string]string `json:"meta"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mz); err != nil {
		t.Fatal(err)
	}
	if len(mz.Models) != 1 {
		t.Fatalf("modelz models: %+v", mz.Models)
	}
	ledger, ok, err := LedgerFromMeta(mz.Models[0].Meta)
	if err != nil || !ok {
		t.Fatalf("modelz meta carries no ledger: ok=%v err=%v", ok, err)
	}
	if ledger.Total() != (Budget{Epsilon: 1}) || ledger.Spent() != (Budget{Epsilon: 1}) {
		t.Errorf("ledger totals: %+v", ledger)
	}
	if len(ledger.Entries) != 1 || !strings.HasPrefix(ledger.Entries[0].Label, "train(") {
		t.Errorf("ledger entries: %+v", ledger.Entries)
	}

	// Cancellation through the facade: a pre-cancelled context stops a
	// fresh run before any pass completes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainCtx(ctx, train, NewLogisticLoss(lambda),
		WithBudget(Budget{Epsilon: 1}),
		WithPasses(5), WithBatch(50), WithRadius(1/lambda), WithRand(r),
	); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run err = %v, want context.Canceled", err)
	}
}

// Accountant.Split drives the one-vs-all facade path with the shares
// enforced, through TrainOneVsAllCtx.
func TestFacadeAccountantOneVsAll(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	train, test := MNISTSim(r, 0.02)
	proj := NewProjection(r, train.Dim(), 20)
	p := &Dataset{Name: "p", Classes: train.Classes, Y: train.Y}
	pt := &Dataset{Name: "pt", Classes: test.Classes, Y: test.Y}
	for _, x := range train.X {
		p.X = append(p.X, proj.Apply(x))
	}
	for _, x := range test.X {
		pt.X = append(pt.X, proj.Apply(x))
	}

	acct, err := NewAccountant(Budget{Epsilon: 10})
	if err != nil {
		t.Fatal(err)
	}
	per, err := acct.Split("onevsall", 10)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.05
	m, err := TrainOneVsAllCtx(context.Background(), p, 10, func(view Samples, class int) ([]float64, error) {
		res, err := TrainCtx(context.Background(), view, NewLogisticLoss(lambda),
			WithBudget(per[class]),
			WithPasses(3), WithBatch(50), WithRadius(1/lambda), WithRand(r))
		if err != nil {
			return nil, err
		}
		return res.W, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The task is tiny (1.2k rows, ε=1 per class), so just require
	// clearly-better-than-random: the test pins the API mechanics and
	// the enforced split, not the accuracy frontier.
	if acc := Accuracy(pt, m); acc < 0.15 {
		t.Errorf("one-vs-all accuracy %v (random = 0.1)", acc)
	}
	if l := acct.Ledger(); len(l.Entries) != 10 {
		t.Errorf("ledger entries: %d, want 10", len(l.Entries))
	}
}

// PrivateTuneCtx through the facade, accountant attached.
func TestFacadePrivateTuneCtx(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	train, _ := ProteinSim(r, 0.2)
	acct, err := NewAccountant(Budget{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	lambdaLoss := func(lambda float64) LossFunction { return NewLogisticLoss(lambda) }
	fit := EngineTuningTrainFunc(lambdaLoss, TrainOptions{
		Budget: Budget{Epsilon: 0.5}, Rand: r,
	})
	res, err := PrivateTuneCtx(context.Background(), train, PaperTuningGrid(), Budget{Epsilon: 1}, acct, fit, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("nil tuned model")
	}
	if got := acct.Spent(); got.Epsilon != 1 {
		t.Errorf("tuner spend: %v", got)
	}
}

// The out-of-core store through the facade: convert a sparse dataset
// to a store file, train privately from disk under each strategy, and
// pin the released model bit-identical to the in-memory run — the
// representation-independence invariant of DESIGN.md §7.
func TestFacadeOutOfCoreStore(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	train, _ := KDDSimSparse(r, 0.002)
	path := filepath.Join(t.TempDir(), "kdd.bolt")
	if err := WriteStore(path, train, StoreOptions{ChunkRows: 128}); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Len() != train.Len() || rd.Dim() != train.Dim() {
		t.Fatalf("store shape %dx%d, want %dx%d", rd.Len(), rd.Dim(), train.Len(), train.Dim())
	}

	f := NewLogisticLoss(1e-2)
	for _, tc := range []struct {
		strategy ExecutionStrategy
		workers  int
		passes   int
	}{
		{StrategySequential, 1, 2},
		{StrategySharded, 2, 2},
		{StrategyStreaming, 1, 1},
	} {
		run := func(s Samples) *TrainResult {
			res, err := TrainCtx(context.Background(), s, f,
				WithBudget(Budget{Epsilon: 1}),
				WithPasses(tc.passes), WithBatch(10), WithRadius(100),
				WithStrategy(tc.strategy, tc.workers),
				WithRand(rand.New(rand.NewSource(77))))
			if err != nil {
				t.Fatalf("%v: %v", tc.strategy, err)
			}
			return res
		}
		mem, disk := run(train), run(rd)
		if mem.Sensitivity != disk.Sensitivity {
			t.Fatalf("%v: Δ₂ differs by representation", tc.strategy)
		}
		for i := range mem.W {
			if math.Float64bits(mem.W[i]) != math.Float64bits(disk.W[i]) {
				t.Fatalf("%v: store-backed model diverged at w[%d]", tc.strategy, i)
			}
		}
	}
}

// The online surface through the facade alone: grow a segment
// directory, train continually under one budget, resume from the
// stamped ledger.
func TestFacadeSegmentDirContinual(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	train, _ := KDDSimSparse(r, 0.002)
	dir := filepath.Join(t.TempDir(), "kdd.segdir")
	if _, err := AppendStoreSegment(dir, train, StoreOptions{ChunkRows: 128}); err != nil {
		t.Fatal(err)
	}
	more, _ := KDDSimSparse(rand.New(rand.NewSource(32)), 0.001)
	if _, err := AppendStoreSegment(dir, more, StoreOptions{ChunkRows: 128}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != train.Len()+more.Len() {
		t.Fatalf("union rows %d, want %d", d.Len(), train.Len()+more.Len())
	}

	f := NewLogisticLoss(1e-2)
	ct, err := NewContinualRDP(Budget{Epsilon: 2, Delta: 1e-6}, 2, f,
		WithPasses(1), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Retrain(context.Background(), d); err != nil {
		t.Fatal(err)
	}

	// Restart story: ledger → metadata → RestoreAccountant → resume.
	meta := map[string]string{}
	if err := ct.Accountant().StampMeta(meta); err != nil {
		t.Fatal(err)
	}
	l, ok, err := LedgerFromMeta(meta)
	if err != nil || !ok {
		t.Fatalf("ledger round trip: ok=%v err=%v", ok, err)
	}
	acct, err := RestoreAccountant(l)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := NewContinualTrainer(acct, 2, f,
		WithPasses(1), WithBatch(10), WithRadius(100),
		WithRand(rand.New(rand.NewSource(6))))
	if err != nil {
		t.Fatal(err)
	}
	if ct2.Window() != 1 {
		t.Fatalf("resumed at window %d, want 1", ct2.Window())
	}
	if _, err := ct2.Retrain(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if _, err := ct2.Retrain(context.Background(), d); !errors.Is(err, ErrBudgetOverdraw) {
		t.Fatalf("third window err = %v, want ErrBudgetOverdraw", err)
	}

	if before, after, err := CompactStoreDir(dir, 1<<20); err != nil || after >= before {
		t.Fatalf("compaction: before=%d after=%d err=%v", before, after, err)
	}
}
