package boltondp

// One benchmark per table/figure of the paper (DESIGN.md §3): each
// drives the same runner as `go run ./cmd/experiments -run <id>`, at a
// small scale with trimmed grids so the full suite stays minutes, not
// hours. Use the CLI with -scale for paper-sized runs.
//
// Micro-benchmarks for the hot substrate operations (gradient update,
// noise sampling, page scan, UDA epoch) follow.

import (
	"io"
	"math/rand"
	"testing"

	"boltondp/internal/bismarck"
	"boltondp/internal/core"
	"boltondp/internal/data"
	"boltondp/internal/dp"
	"boltondp/internal/experiments"
	"boltondp/internal/loss"
	"boltondp/internal/rng"
	"boltondp/internal/sgd"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Scale: 0.002, Seed: 1, Out: io.Discard, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2: convergence (excess empirical risk vs m), ours vs BST14.
func BenchmarkTable2Convergence(b *testing.B) { benchExperiment(b, "table2") }

// Table 3: dataset inventory (generation + summary).
func BenchmarkTable3Datasets(b *testing.B) { benchExperiment(b, "table3") }

// Table 4: step-size table.
func BenchmarkTable4StepSizes(b *testing.B) { benchExperiment(b, "table4") }

// Figure 1: UDA integration points and sampling counts.
func BenchmarkFig1Integration(b *testing.B) { benchExperiment(b, "fig1") }

// Figure 2: scalability — runtime/epoch vs dataset size.
func BenchmarkFig2ScalabilityMemory(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2ScalabilityDisk(b *testing.B)   { benchExperiment(b, "fig2b") }

// Figure 3: accuracy vs ε, tuning with public data.
func BenchmarkFig3Accuracy(b *testing.B) { benchExperiment(b, "fig3") }

// Figure 4: number of passes / batch size effects.
func BenchmarkFig4PassesConvex(b *testing.B)         { benchExperiment(b, "fig4a") }
func BenchmarkFig4PassesStronglyConvex(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4BatchConvex(b *testing.B)          { benchExperiment(b, "fig4c") }

// Figure 5: runtime overhead varying epochs and batch size.
func BenchmarkFig5Runtime(b *testing.B) { benchExperiment(b, "fig5") }

// Figure 6: accuracy with the private tuning Algorithm 3.
func BenchmarkFig6PrivateTuning(b *testing.B) { benchExperiment(b, "fig6") }

// Figure 7: Huber SVM accuracy with private tuning.
func BenchmarkFig7HuberSVM(b *testing.B) { benchExperiment(b, "fig7") }

// Figures 8–9: HIGGS/KDDCup-99 accuracy, public and private tuning.
func BenchmarkFig8LargeDatasets(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9LargePrivate(b *testing.B)  { benchExperiment(b, "fig9") }

// Figure 10: mini-batch sizes 50–200.
func BenchmarkFig10BatchSweep(b *testing.B) { benchExperiment(b, "fig10") }

// Ablations (design choices DESIGN.md calls out, beyond the paper's
// own plots): convex step families, model-averaging schemes, and the
// dimension dependence of the two noise mechanisms.
func BenchmarkAblationStepFamilies(b *testing.B)   { benchExperiment(b, "ablation-steps") }
func BenchmarkAblationAveraging(b *testing.B)      { benchExperiment(b, "ablation-averaging") }
func BenchmarkAblationNoiseDimension(b *testing.B) { benchExperiment(b, "ablation-noise") }
func BenchmarkAblationFreshPerm(b *testing.B)      { benchExperiment(b, "ablation-freshperm") }

// ---------------------------------------------------------------------
// Micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkSGDPass measures one pass of plain PSGD (m=10k, d=50, b=50)
// — the black box every private algorithm shares.
func BenchmarkSGDPass(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ds := data.ScaleSim(1, 10000, 50)
	f := loss.NewLogistic(1e-3, 0)
	p := f.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sgd.Run(ds, sgd.Config{
			Loss: f, Step: sgd.StronglyConvexPaper(p.Beta, p.Gamma),
			Passes: 1, Batch: 50, Rand: r,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(10000 * 50 * 8))
}

// BenchmarkOutputPerturbation measures the entire bolt-on privacy step
// (sensitivity + one noise vector) — the paper's "virtually no
// overhead" claim in microbenchmark form.
func BenchmarkOutputPerturbation(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	w := make([]float64, 50)
	budget := dp.Budget{Epsilon: 0.1}
	sens := dp.SensitivityStronglyConvex(2, 1e-3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := budget.Perturb(r, w, sens); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerBatchNoise measures one SCS13-style per-batch noise draw
// (d=50): multiply by T = km/b to see the white-box overhead.
func BenchmarkPerBatchNoise(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	noise := make([]float64, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.GammaSphere(r, noise, 0.04, 0.01)
	}
}

// BenchmarkGaussianNoise is the (ε,δ) counterpart.
func BenchmarkGaussianNoise(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	noise := make([]float64, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.GaussianVec(r, noise, 1.5)
	}
}

// BenchmarkTableScan measures a full sequential scan of an in-memory
// page table (m=20k, d=50).
func BenchmarkTableScan(b *testing.B) {
	ds := data.ScaleSim(2, 20000, 50)
	tab := bismarck.NewMemTable("bench", 50)
	if err := tab.InsertAll(ds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tab.Scan(func(x []float64, y float64) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 20000 {
			b.Fatal("short scan")
		}
	}
	b.SetBytes(int64(tab.NumPages() * bismarck.PageSize))
}

// BenchmarkUDAEpoch measures one SGD epoch through the UDA architecture
// (transition-per-tuple), the unit of Figure 5's x-axis.
func BenchmarkUDAEpoch(b *testing.B) {
	ds := data.ScaleSim(3, 20000, 50)
	tab := bismarck.NewMemTable("bench", 50)
	if err := tab.InsertAll(ds); err != nil {
		b.Fatal(err)
	}
	f := loss.NewLogistic(1e-3, 0)
	p := f.Params()
	agg := bismarck.NewSGDAgg(50, f, sgd.StronglyConvexPaper(p.Beta, p.Gamma), 10, 1e3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv := &bismarck.Driver{Table: tab, Agg: agg, Epochs: 1}
		if _, _, err := drv.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrivateTrainEndToEnd measures a complete Algorithm 2 run
// (m=10k, d=50, k=5, b=50) including the output perturbation.
func BenchmarkPrivateTrainEndToEnd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ds := data.ScaleSim(4, 10000, 50)
	f := loss.NewLogistic(1e-3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Train(ds, f, core.Options{
			Budget: dp.Budget{Epsilon: 0.1},
			Passes: 5, Batch: 50, Radius: 1000, Rand: r,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
