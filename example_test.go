package boltondp_test

// Runnable godoc examples for the public API. Each uses fixed seeds so
// the Output blocks are stable, and prints derived quantities
// (sensitivities, budget splits) rather than noisy accuracies.

import (
	"fmt"
	"math/rand"

	"boltondp"
)

// Train a private model and inspect the calibration the bolt-on step
// used. The strongly convex sensitivity 2L/(γm) is a deterministic
// function of the run shape, so it is the same on every execution.
func ExampleTrain() {
	r := rand.New(rand.NewSource(1))
	train, _ := boltondp.ProteinSim(r, 0.02)

	lambda := 0.01
	res, err := boltondp.Train(train, boltondp.NewLogisticLoss(lambda), boltondp.TrainOptions{
		Budget: boltondp.Budget{Epsilon: 0.1},
		Passes: 5, Batch: 50, Radius: 1 / lambda,
		Rand: r,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// L = 1 + λR = 2, γ = λ = 0.01, m = 1457:
	// Δ₂ = 2·2/(0.01·1457) ≈ 0.27454 — independent of the batch size
	// (the sound form of Lemma 8; see dp.SensitivityStronglyConvex).
	fmt.Printf("m=%d\n", train.Len())
	fmt.Printf("Δ₂=%.5f\n", res.Sensitivity)
	fmt.Printf("model dim=%d\n", len(res.W))
	// Output:
	// m=1457
	// Δ₂=0.27454
	// model dim=74
}

// Splitting a budget across one-vs-all sub-models uses simple
// composition: both ε and δ divide by the number of classes.
func ExampleBudget_Split() {
	total := boltondp.Budget{Epsilon: 4, Delta: 1e-4}
	per := total.Split(4)
	fmt.Println(per)
	// Output:
	// (ε=1, δ=2.5e-05)
}

// Pure ε-DP budgets print without a δ component.
func ExampleBudget_String() {
	fmt.Println(boltondp.Budget{Epsilon: 0.5})
	fmt.Println(boltondp.Budget{Epsilon: 0.5, Delta: 1e-6})
	// Output:
	// ε=0.5
	// (ε=0.5, δ=1e-06)
}

// The paper's hyperparameter grid (§4.3).
func ExamplePaperTuningGrid() {
	for _, p := range boltondp.PaperTuningGrid() {
		fmt.Println(p)
	}
	// Output:
	// (k=5 b=50 λ=0.0001)
	// (k=5 b=50 λ=0.001)
	// (k=5 b=50 λ=0.01)
	// (k=10 b=50 λ=0.0001)
	// (k=10 b=50 λ=0.001)
	// (k=10 b=50 λ=0.01)
}

// A linear classifier is just sign(⟨w, x⟩).
func ExampleLinearClassifier() {
	c := &boltondp.LinearClassifier{W: []float64{1, -1}}
	fmt.Println(c.Predict([]float64{0.9, 0.1}))
	fmt.Println(c.Predict([]float64{0.1, 0.9}))
	// Output:
	// 1
	// -1
}

// The in-RDBMS path gives the identical four-integration choice as the
// paper's Figure 1; here the bolt-on algorithm reports exactly one
// noise draw regardless of epochs and batches.
func ExampleTrainInRDBMS() {
	r := rand.New(rand.NewSource(2))
	train, _ := boltondp.KDDSim(r, 0.005)
	tab := boltondp.NewMemTable("kdd", train.Dim())
	if err := tab.InsertAll(train); err != nil {
		fmt.Println(err)
		return
	}
	res, err := boltondp.TrainInRDBMS(tab, boltondp.NewLogisticLoss(0.01), boltondp.UDATrainConfig{
		Algorithm: boltondp.UDAOutputPerturb,
		Budget:    boltondp.Budget{Epsilon: 1},
		Passes:    4, Batch: 10, Radius: 100,
		Rand: r,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("epochs=%d noise draws=%d\n", res.Epochs, res.NoiseDraws)
	// Output:
	// epochs=4 noise draws=1
}
