package boltondp

// Repository-level integration tests: the paper's headline claims,
// asserted end-to-end through the public API only.

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// The paper's central accuracy claim (Figures 3/6): at a small budget
// on a realistic strongly convex task, bolt-on output perturbation
// beats the white-box baselines by a wide margin and sits near the
// noiseless model. Averaged over seeds for stability.
func TestHeadlineAccuracyClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison is not short")
	}
	const trials = 4
	lambda := 0.02
	budget := Budget{Epsilon: 0.1, Delta: 1e-9}
	var noiseless, ours, scs13, bst14 float64
	for seed := int64(0); seed < trials; seed++ {
		r := rand.New(rand.NewSource(200 + seed))
		train, test := CovtypeSim(r, 0.02)
		f := NewLogisticLoss(lambda)

		nr, err := NoiselessSGD(train, f, BaselineOptions{
			Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		noiseless += Accuracy(test, &LinearClassifier{W: nr.W})

		or, err := Train(train, f, TrainOptions{
			Budget: budget, Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
			// This test reproduces the paper's reported comparison, so
			// it uses the paper's Δ₂ = 2L/(γmb) calibration (see the
			// finding on dp.SensitivityStronglyConvex).
			PaperBatchSensitivity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ours += Accuracy(test, &LinearClassifier{W: or.W})

		sr, err := SCS13(train, f, BaselineOptions{
			Budget: budget, Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		scs13 += Accuracy(test, &LinearClassifier{W: sr.W})

		br, err := BST14(train, f, BaselineOptions{
			Budget: budget, Passes: 10, Batch: 50, Radius: 1 / lambda, Rand: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		bst14 += Accuracy(test, &LinearClassifier{W: br.W})
	}
	noiseless, ours, scs13, bst14 = noiseless/trials, ours/trials, scs13/trials, bst14/trials
	t.Logf("noiseless=%.3f ours=%.3f scs13=%.3f bst14=%.3f", noiseless, ours, scs13, bst14)
	if ours <= scs13 {
		t.Errorf("ours (%.3f) should beat SCS13 (%.3f) at ε=0.1", ours, scs13)
	}
	if ours <= bst14 {
		t.Errorf("ours (%.3f) should beat BST14 (%.3f) at ε=0.1", ours, bst14)
	}
	if noiseless-ours > 0.08 {
		t.Errorf("ours (%.3f) should be near noiseless (%.3f) at ε=0.1 on this m", ours, noiseless)
	}
}

// Tune privately, save the winner with its privacy metadata, reload it
// and verify behavior is preserved — the full deployment loop.
func TestTuneSaveLoadLoop(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	train, test := KDDSim(r, 0.02)
	budget := Budget{Epsilon: 0.5}
	res, err := PrivateTune(train, PaperTuningGrid(), budget,
		func(part *Dataset, p TuningParams) (Classifier, error) {
			tr, err := Train(part, NewLogisticLoss(p.Lambda), TrainOptions{
				Budget: budget, Passes: p.K, Batch: p.B, Radius: 1 / p.Lambda, Rand: r,
				PaperBatchSensitivity: true, // paper-parity comparison
			})
			if err != nil {
				return nil, err
			}
			return &LinearClassifier{W: tr.W}, nil
		}, r)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.json")
	meta := map[string]string{"epsilon": "0.5", "tuned": res.Params.String()}
	if err := SaveClassifier(path, res.Model, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta["tuned"] != res.Params.String() {
		t.Errorf("meta round trip: %v", gotMeta)
	}
	before := Accuracy(test, res.Model)
	after := Accuracy(test, loaded)
	if before != after {
		t.Errorf("accuracy changed across save/load: %v -> %v", before, after)
	}
	if after < 0.8 {
		t.Errorf("tuned KDD model accuracy %v", after)
	}
}

// The library path (core.Train via facade) and the in-RDBMS path must
// calibrate the same sensitivity for the same run shape — the bolt-on
// guarantee does not depend on which engine executed SGD.
func TestLibraryAndRDBMSSensitivityAgree(t *testing.T) {
	r := rand.New(rand.NewSource(400))
	train, _ := ProteinSim(r, 0.01)
	lambda := 0.05
	f := NewLogisticLoss(lambda)

	lib, err := Train(train, f, TrainOptions{
		Budget: Budget{Epsilon: 1}, Passes: 3, Batch: 10, Radius: 1 / lambda, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewMemTable("t", train.Dim())
	if err := tab.InsertAll(train); err != nil {
		t.Fatal(err)
	}
	rdbms, err := TrainInRDBMS(tab, f, UDATrainConfig{
		Algorithm: UDAOutputPerturb, Budget: Budget{Epsilon: 1},
		Passes: 3, Batch: 10, Radius: 1 / lambda, Rand: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lib.Sensitivity != rdbms.Sensitivity {
		t.Errorf("sensitivities diverge: library %v vs RDBMS %v", lib.Sensitivity, rdbms.Sensitivity)
	}
}
